"""Micro-batch window assembly: dual trigger, boundaries, replay equivalence."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.queries.arrivals import TimedQuery, window_batches
from repro.queries.query import Query
from repro.streaming import (
    MicroBatcher,
    TRIGGER_DURATION,
    TRIGGER_FLUSH,
    TRIGGER_SIZE,
    assemble_micro_batches,
)


def tq(arrival: float, source: int = 0, target: int = 1) -> TimedQuery:
    return TimedQuery(arrival, Query(source, target))


class TestMicroBatcherConfig:
    def test_non_positive_window_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(0.0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(-1.0)

    def test_max_batch_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(1.0, max_batch=0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigurationError):
            MicroBatcher(1.0).offer(tq(-0.1))


class TestDualTrigger:
    def test_duration_trigger_cuts_at_deadline(self):
        b = MicroBatcher(1.0)
        assert b.offer(tq(0.2)) == []
        assert b.deadline == pytest.approx(1.2)
        # Next arrival past the deadline first cuts the open window...
        windows = b.offer(tq(1.5))
        assert len(windows) == 1
        w = windows[0]
        assert w.trigger == TRIGGER_DURATION
        assert w.cut_at == pytest.approx(1.2)  # stamped at the deadline
        assert len(w) == 1
        # ...and the late arrival opened a fresh window.
        assert b.pending == 1
        assert b.deadline == pytest.approx(2.5)

    def test_size_trigger_cuts_immediately(self):
        b = MicroBatcher(10.0, max_batch=3)
        assert b.offer(tq(0.0)) == []
        assert b.offer(tq(0.1)) == []
        windows = b.offer(tq(0.2))
        assert len(windows) == 1
        assert windows[0].trigger == TRIGGER_SIZE
        assert windows[0].cut_at == pytest.approx(0.2)
        assert len(windows[0]) == 3
        assert b.pending == 0

    def test_boundary_is_half_open(self):
        """An arrival at exactly opened_at + window starts the next window."""
        b = MicroBatcher(1.0)
        b.offer(tq(0.0))
        windows = b.offer(tq(1.0))
        assert len(windows) == 1
        assert len(windows[0]) == 1
        assert b.pending == 1  # the boundary arrival went to the new window

    def test_max_batch_one_every_query_its_own_window(self):
        b = MicroBatcher(1.0, max_batch=1)
        for i, at in enumerate([0.0, 0.3, 0.6]):
            windows = b.offer(tq(at))
            assert len(windows) == 1
            assert windows[0].trigger == TRIGGER_SIZE
            assert windows[0].index == i

    def test_cut_if_due_before_deadline_returns_none(self):
        b = MicroBatcher(1.0)
        b.offer(tq(0.0))
        assert b.cut_if_due(0.5) is None
        assert b.pending == 1

    def test_indices_are_sequential(self):
        b = MicroBatcher(0.5, max_batch=2)
        cut = []
        for at in [0.0, 0.1, 0.2, 1.5, 1.6, 1.7]:
            cut.extend(b.offer(tq(at)))
        final = b.flush()
        if final is not None:
            cut.append(final)
        assert [w.index for w in cut] == list(range(len(cut)))


class TestFlush:
    def test_flush_empty_returns_none(self):
        assert MicroBatcher(1.0).flush() is None

    def test_flush_before_deadline_uses_flush_trigger(self):
        b = MicroBatcher(1.0)
        b.offer(tq(0.0))
        w = b.flush(0.4)
        assert w is not None
        assert w.trigger == TRIGGER_FLUSH
        assert w.cut_at == pytest.approx(0.4)

    def test_flush_past_deadline_is_a_duration_cut(self):
        b = MicroBatcher(1.0)
        b.offer(tq(0.0))
        w = b.flush(5.0)
        assert w.trigger == TRIGGER_DURATION
        assert w.cut_at == pytest.approx(1.0)

    def test_flush_without_instant_stamps_the_deadline(self):
        b = MicroBatcher(1.0)
        b.offer(tq(0.2))
        w = b.flush()
        assert w.trigger == TRIGGER_DURATION
        assert w.cut_at == pytest.approx(1.2)


arrival_streams = st.lists(
    st.floats(min_value=0.0, max_value=50.0,
              allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=60,
)


class TestAssembleProperties:
    @given(arrival_streams, st.floats(min_value=0.01, max_value=5.0),
           st.one_of(st.none(), st.integers(min_value=1, max_value=8)))
    @settings(max_examples=200, deadline=None, database=None, derandomize=True)
    def test_assembly_invariants(self, times, window_seconds, max_batch):
        arrivals = [tq(at, i % 5, (i + 1) % 5) for i, at in enumerate(times)]
        windows = assemble_micro_batches(arrivals, window_seconds, max_batch)
        # Conservation: every arrival lands in exactly one window.
        assert sum(len(w) for w in windows) == len(arrivals)
        flat = [a for w in windows for a in w.arrivals]
        assert sorted(a.arrival for a in flat) == sorted(times)
        for w in windows:
            # Size trigger respected.
            if max_batch is not None:
                assert len(w) <= max_batch
            # Window span never exceeds the duration trigger.
            assert w.span_seconds <= window_seconds + 1e-9
            # Contents lie inside [opened_at, cut_at].
            for a in w.arrivals:
                assert w.opened_at - 1e-9 <= a.arrival <= w.cut_at + 1e-9
        # Windows are ordered and disjoint in time.
        for earlier, later in zip(windows, windows[1:]):
            assert earlier.index + 1 == later.index
            assert earlier.cut_at <= later.cut_at + 1e-9

    @given(arrival_streams, st.floats(min_value=0.01, max_value=5.0))
    @settings(max_examples=200, deadline=None, database=None, derandomize=True)
    def test_timer_only_windows_never_outlast_grid_windows(
        self, times, window_seconds
    ):
        """First-query anchoring can only merge trickle traffic, never
        produce a window wider than the duration trigger allows — so each
        micro-window spans at most two adjacent grid windows of
        :func:`window_batches`."""
        arrivals = [tq(at) for i, at in enumerate(times)]
        micro = assemble_micro_batches(arrivals, window_seconds, None)
        grid = window_batches(arrivals, window_seconds)
        assert sum(len(w) for w in micro) == sum(len(b) for b in grid)
        for w in micro:
            lo = math.floor(w.opened_at / window_seconds)
            hi = math.floor(w.cut_at / window_seconds)
            assert hi - lo <= 2

    @given(arrival_streams, st.floats(min_value=0.01, max_value=5.0),
           st.one_of(st.none(), st.integers(min_value=1, max_value=8)))
    @settings(max_examples=200, deadline=None, database=None, derandomize=True)
    def test_replay_is_deterministic(self, times, window_seconds, max_batch):
        arrivals = [tq(at, i % 5, (i + 1) % 5) for i, at in enumerate(times)]
        first = assemble_micro_batches(arrivals, window_seconds, max_batch)
        second = assemble_micro_batches(arrivals, window_seconds, max_batch)
        assert [
            (w.index, w.opened_at, w.cut_at, w.trigger, len(w)) for w in first
        ] == [
            (w.index, w.opened_at, w.cut_at, w.trigger, len(w)) for w in second
        ]
