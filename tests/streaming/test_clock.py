"""Clock abstraction: deterministic simulated time vs real monotonic time."""

import pytest

from repro.exceptions import ConfigurationError
from repro.streaming import MonotonicClock, SimulatedClock, make_clock


class TestSimulatedClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_custom_start(self):
        assert SimulatedClock(5.0).now() == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedClock(-1.0)

    def test_sleep_advances_without_blocking(self):
        clock = SimulatedClock()
        clock.sleep(2.5)
        assert clock.now() == 2.5

    def test_sleep_non_positive_is_noop(self):
        clock = SimulatedClock(1.0)
        clock.sleep(0.0)
        clock.sleep(-3.0)
        assert clock.now() == 1.0

    def test_advance_to_is_monotone(self):
        clock = SimulatedClock()
        clock.advance_to(4.0)
        assert clock.now() == 4.0
        clock.advance_to(2.0)  # never goes backwards
        assert clock.now() == 4.0

    def test_not_real(self):
        assert SimulatedClock.is_real is False


class TestMonotonicClock:
    def test_zeroed_at_construction(self):
        clock = MonotonicClock()
        assert 0.0 <= clock.now() < 0.5

    def test_sleep_costs_real_time(self):
        clock = MonotonicClock()
        before = clock.now()
        clock.sleep(0.02)
        assert clock.now() - before >= 0.015

    def test_advance_to_past_instant_returns_immediately(self):
        clock = MonotonicClock()
        clock.advance_to(-10.0)  # already past; must not block
        assert clock.now() < 0.5

    def test_is_real(self):
        assert MonotonicClock.is_real is True


class TestMakeClock:
    def test_simulated(self):
        assert isinstance(make_clock("simulated"), SimulatedClock)

    def test_real(self):
        assert isinstance(make_clock("real"), MonotonicClock)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            make_clock("quartz")
