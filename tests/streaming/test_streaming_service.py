"""StreamingQueryService end-to-end: accounting, exactness, resilience."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.network.generators import grid_city
from repro.network.timeline import TrafficTimeline, congestion_snapshot
from repro.obs import MetricsRegistry, use_registry
from repro.queries.arrivals import PoissonArrivals, TimedQuery
from repro.queries.query import Query
from repro.queries.workload import WorkloadGenerator
from repro.resilience import CircuitBreaker, REASON_SHED, STAGE_ADMISSION
from repro.search.dijkstra import dijkstra
from repro.streaming import StreamingQueryService, assemble_micro_batches


@pytest.fixture(scope="module")
def stream_graph():
    return grid_city(6, 6, seed=1)


@pytest.fixture(scope="module")
def stream(stream_graph):
    workload = WorkloadGenerator(stream_graph, seed=2)
    return PoissonArrivals(workload, rate=150.0, seed=3).duration(2.0)


def run_service(graph, arrivals, **kwargs):
    kwargs.setdefault("window_seconds", 0.25)
    kwargs.setdefault("max_batch", 32)
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("clock", "simulated")
    with StreamingQueryService(graph, **kwargs) as service:
        return service.run(arrivals)


def assert_exact(graph, report):
    for q, r in report.answers:
        truth = dijkstra(graph, q.source, q.target).distance
        assert math.isclose(r.distance, truth, rel_tol=1e-9), (
            q, r.distance, truth,
        )


class TestAccounting:
    def test_every_arrival_answered_or_dead_lettered(self, stream_graph, stream):
        report = run_service(stream_graph, stream)
        assert report.total_arrivals == len(stream)
        assert report.unaccounted_queries == 0
        assert len(report.dead_letters) == 0
        assert report.answered_queries == len(stream)

    def test_answers_exact_against_dijkstra(self, stream_graph, stream):
        report = run_service(stream_graph, stream)
        assert_exact(stream_graph, report)

    def test_empty_stream(self, stream_graph):
        report = run_service(stream_graph, [])
        assert report.total_arrivals == 0
        assert report.windows == []
        assert report.qps == 0.0

    def test_negative_arrival_rejected(self, stream_graph):
        with pytest.raises(ConfigurationError):
            run_service(stream_graph, [TimedQuery(-1.0, Query(0, 1))])

    def test_invalid_queries_dead_lettered(self, stream_graph):
        n = stream_graph.num_vertices
        arrivals = [
            TimedQuery(0.1, Query(0, 5)),
            TimedQuery(0.2, Query(n + 3, 2)),  # out of range
        ]
        report = run_service(stream_graph, arrivals)
        assert report.answered_queries == 1
        assert len(report.dead_letters) == 1
        assert report.unaccounted_queries == 0


class TestDeterminism:
    def test_simulated_replay_is_identical(self, stream_graph, stream):
        first = run_service(stream_graph, stream)
        second = run_service(stream_graph, stream)
        assert first.distances() == second.distances()
        assert [
            (w.index, w.trigger, w.queries, w.cut_at) for w in first.windows
        ] == [
            (w.index, w.trigger, w.queries, w.cut_at) for w in second.windows
        ]
        assert first.latencies == second.latencies

    def test_windows_match_pure_assembler_when_nothing_sheds(
        self, stream_graph, stream
    ):
        """With no service cost and a roomy queue, the online loop must
        produce exactly the windows of the offline replay function."""
        report = run_service(stream_graph, stream)
        expected = assemble_micro_batches(stream, 0.25, 32)
        assert [(w.index, w.trigger, w.queries) for w in report.windows] == [
            (w.index, w.trigger, len(w)) for w in expected
        ]


class TestCrossWindowCache:
    def test_repeat_queries_hit_the_cache(self, stream_graph):
        q = Query(0, 30)
        arrivals = [TimedQuery(0.1 * i, q) for i in range(1, 11)]
        report = run_service(stream_graph, arrivals, window_seconds=0.2)
        assert report.stream_cache_hits > 0
        assert_exact(stream_graph, report)

    def test_cache_can_be_disabled(self, stream_graph, stream):
        report = run_service(stream_graph, stream, stream_cache_bytes=0)
        assert report.stream_cache_hits == 0
        assert report.stream_cache_misses == 0
        assert report.unaccounted_queries == 0


class TestShedding:
    def test_degrade_policy_stays_exact_under_overload(self, stream_graph, stream):
        report = run_service(
            stream_graph,
            stream,
            window_seconds=0.1,
            max_batch=8,
            queue_capacity=4,
            service_seconds_per_query=0.01,
        )
        assert report.shed_degraded > 0
        assert report.backpressure_stalls > 0
        assert report.unaccounted_queries == 0
        assert report.answered_queries == len(stream)
        assert_exact(stream_graph, report)

    def test_drop_policy_dead_letters_every_drop(self, stream_graph, stream):
        report = run_service(
            stream_graph,
            stream,
            window_seconds=0.1,
            max_batch=8,
            queue_capacity=4,
            shed_policy="drop",
            service_seconds_per_query=0.01,
        )
        assert report.shed_dropped > 0
        assert report.dropped_queries == report.shed_dropped
        assert report.unaccounted_queries == 0
        shed_letters = [d for d in report.dead_letters if d.reason == REASON_SHED]
        assert len(shed_letters) == report.shed_dropped
        assert all(d.stage == STAGE_ADMISSION for d in shed_letters)

    def test_degrade_then_drop_respects_budget(self, stream_graph, stream):
        report = run_service(
            stream_graph,
            stream,
            window_seconds=0.1,
            max_batch=8,
            queue_capacity=4,
            shed_policy="degrade-then-drop",
            degrade_budget=5,
            service_seconds_per_query=0.01,
        )
        assert report.shed_degraded == 5
        assert report.shed_dropped > 0
        assert report.unaccounted_queries == 0


class TestBreakerDegradation:
    def test_open_breaker_degrades_windows_exactly(self, stream_graph, stream):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1e9)
        breaker.record_failure()  # trip it before traffic arrives
        report = run_service(stream_graph, stream, breaker=breaker)
        assert report.breaker_degraded_windows == len(report.windows)
        assert report.unaccounted_queries == 0
        assert_exact(stream_graph, report)

    def test_backend_failure_trips_breaker_and_degrades(
        self, stream_graph, stream, monkeypatch
    ):
        service = StreamingQueryService(
            stream_graph, window_seconds=0.25, max_batch=32, workers=0,
            clock="simulated",
            breaker=CircuitBreaker(failure_threshold=1, cooldown_seconds=1e9),
        )
        def boom(batch, at_seconds=None, index=None):
            raise RuntimeError("backend down")
        monkeypatch.setattr(service.backend, "process_window", boom)
        report = service.run(stream)
        service.close()
        assert report.breaker_degraded_windows == len(report.windows)
        assert report.unaccounted_queries == 0
        assert_exact(stream_graph, report)


class TestTimelineIntegration:
    def test_weight_epochs_invalidate_the_stream_cache(self):
        graph = grid_city(6, 6, seed=1)
        workload = WorkloadGenerator(graph, seed=2)
        arrivals = PoissonArrivals(workload, rate=200.0, seed=4).duration(1.5)
        timeline = TrafficTimeline(graph, seed=9)
        for at in (0.5, 1.0):
            timeline.schedule(at, congestion_snapshot(fraction=0.4))
        report = run_service(
            graph, arrivals, window_seconds=0.1, timeline=timeline
        )
        assert report.stream_cache_invalidations == 2
        assert report.unaccounted_queries == 0
        # After the last event the graph is static: every answer produced
        # by a window cut after 1.0 must be exact against the final state.
        final_cut = [w for w in report.windows if w.cut_at > 1.0]
        assert final_cut, "stream should extend past the last epoch"


class TestMetrics:
    def test_streaming_metrics_flow_through_the_registry(
        self, stream_graph, stream
    ):
        registry = MetricsRegistry()
        with use_registry(registry):
            report = run_service(stream_graph, stream)
        assert report.metrics is not None
        counters = report.metrics.counters
        assert counters.get("streaming.arrivals_total") == len(stream)
        assert counters.get("streaming.windows") == len(report.windows)
        assert counters.get("streaming.cache_hits") == report.stream_cache_hits
        spans = [s for s in report.metrics.spans if s.get("name") == "stream_window"]
        assert len(spans) == len(report.windows)

    def test_latency_percentiles_are_ordered(self, stream_graph, stream):
        report = run_service(stream_graph, stream)
        assert 0.0 <= report.p50_latency <= report.p99_latency
        # Duration-triggered windows bound the worst batching delay.
        assert report.p99_latency <= 0.25 + 0.05


class TestParallelBackend:
    def test_worker_pool_backend_matches_oracle(self, stream_graph):
        workload = WorkloadGenerator(stream_graph, seed=5)
        arrivals = PoissonArrivals(workload, rate=200.0, seed=6).duration(0.8)
        report = run_service(stream_graph, arrivals, workers=2)
        assert report.unaccounted_queries == 0
        assert_exact(stream_graph, report)
