"""Per-query deadlines in the streaming service: storm, degrade, accounting."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.network.generators import grid_city
from repro.queries.arrivals import PoissonArrivals, TimedQuery
from repro.queries.query import Query
from repro.queries.workload import WorkloadGenerator
from repro.resilience import DeadLetterRecord, REASON_DEADLINE_EXCEEDED, STAGE_DISPATCH
from repro.streaming import StreamingQueryService


@pytest.fixture(scope="module")
def graph():
    return grid_city(6, 6, seed=1)


@pytest.fixture(scope="module")
def stream(graph):
    workload = WorkloadGenerator(graph, seed=2)
    return PoissonArrivals(workload, rate=100.0, seed=3).duration(1.0)


def run_service(graph, arrivals, **kwargs):
    kwargs.setdefault("window_seconds", 0.25)
    kwargs.setdefault("max_batch", 32)
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("clock", "simulated")
    with StreamingQueryService(graph, **kwargs) as service:
        return service.run(arrivals)


class TestDeadlineStorm:
    def test_backlog_expires_queries_deterministically(self, graph, stream):
        # Each query costs 0.1 simulated seconds to serve; the first window
        # alone blows every later arrival's 0.3 s budget before dispatch.
        report = run_service(
            graph,
            stream,
            query_deadline_seconds=0.3,
            service_seconds_per_query=0.1,
        )
        assert report.deadline_expired > 0
        assert report.unaccounted_queries == 0
        assert (
            report.answered_queries + len(report.dead_letters)
            == report.total_arrivals
        )
        for letter in report.dead_letters:
            assert letter.reason == REASON_DEADLINE_EXCEEDED

    def test_storm_is_reproducible(self, graph, stream):
        kwargs = dict(query_deadline_seconds=0.3, service_seconds_per_query=0.1)
        a = run_service(graph, stream, **kwargs)
        b = run_service(graph, stream, **kwargs)
        assert a.deadline_expired == b.deadline_expired
        assert a.answered_queries == b.answered_queries

    def test_generous_deadline_answers_everything(self, graph, stream):
        report = run_service(graph, stream, query_deadline_seconds=3600.0)
        assert report.answered_queries == len(stream)
        assert report.deadline_expired == 0
        assert len(report.dead_letters) == 0

    def test_no_deadline_report_fields_stay_zero(self, graph, stream):
        report = run_service(graph, stream)
        assert report.deadline_expired == 0
        assert report.deadline_degraded == 0


class TestDegradeLadder:
    def test_deadline_letter_with_budget_left_is_recovered(self, graph):
        service = StreamingQueryService(
            graph,
            window_seconds=0.25,
            workers=0,
            clock="simulated",
            query_deadline_seconds=3600.0,
        )
        tq = TimedQuery(0.0, Query(0, 35))
        letter = DeadLetterRecord(
            source=0,
            target=35,
            reason=REASON_DEADLINE_EXCEEDED,
            stage=STAGE_DISPATCH,
            error="DeadlineExceededError",
        )
        report = service.run([])  # fresh report object shape
        kept, recovered = service._degrade_deadline_letters(
            [letter], [tq], report
        )
        assert kept == []
        assert len(recovered) == 1
        q, result = recovered[0]
        assert (q.source, q.target) == (0, 35)
        assert math.isfinite(result.distance)
        assert report.deadline_degraded == 1

    def test_deadline_letter_with_no_budget_stays_dead(self, graph):
        service = StreamingQueryService(
            graph,
            window_seconds=0.25,
            workers=0,
            clock="simulated",
            query_deadline_seconds=0.001,
        )
        report = service.run([])
        service.clock.sleep(10.0)
        tq = TimedQuery(0.0, Query(0, 35))
        letter = DeadLetterRecord(
            source=0,
            target=35,
            reason=REASON_DEADLINE_EXCEEDED,
            stage=STAGE_DISPATCH,
            error="DeadlineExceededError",
        )
        kept, recovered = service._degrade_deadline_letters(
            [letter], [tq], report
        )
        assert len(kept) == 1
        assert recovered == []

    def test_non_deadline_letters_pass_through_untouched(self, graph):
        service = StreamingQueryService(
            graph,
            window_seconds=0.25,
            workers=0,
            clock="simulated",
            query_deadline_seconds=3600.0,
        )
        report = service.run([])
        letter = DeadLetterRecord(
            source=1,
            target=2,
            reason="invalid-query",
            stage=STAGE_DISPATCH,
            error="ValueError",
        )
        kept, recovered = service._degrade_deadline_letters([letter], [], report)
        assert kept == [letter]
        assert recovered == []


class TestValidation:
    def test_zero_deadline_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            StreamingQueryService(
                graph, workers=0, clock="simulated", query_deadline_seconds=0.0
            )

    def test_negative_deadline_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            StreamingQueryService(
                graph, workers=0, clock="simulated", query_deadline_seconds=-1.0
            )
