"""The library logs its lifecycle events through standard logging."""

import logging

import pytest

from repro.baselines.global_cache import GlobalCacheAnswerer
from repro.core.dynamic import DynamicBatchSession
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.network.timeline import TrafficTimeline, congestion_snapshot


class TestLogging:
    def test_global_cache_build_logged(self, ring, ring_batch, caplog):
        with caplog.at_level(logging.INFO, logger="repro.baselines.global_cache"):
            GlobalCacheAnswerer(ring).build(ring_batch[:15])
        assert any("global cache built" in r.message for r in caplog.records)

    def test_epoch_flush_logged(self, ring, ring_workload, caplog):
        graph = ring.copy()
        session = DynamicBatchSession(
            graph,
            decomposer=SearchSpaceDecomposer(graph),
            answerer=LocalCacheAnswerer(graph, cache_bytes=10**6),
        )
        session.process_batch(ring_workload.batch(20))
        graph.scale_weights(1.5)
        with caplog.at_level(logging.INFO, logger="repro.core.dynamic"):
            session.process_batch(ring_workload.batch(20))
        assert any("flushing" in r.message for r in caplog.records)

    def test_timeline_event_logged(self, ring, caplog):
        graph = ring.copy()
        timeline = TrafficTimeline(graph, seed=1)
        timeline.schedule(1.0, congestion_snapshot(0.1), "jam")
        with caplog.at_level(logging.INFO, logger="repro.network.timeline"):
            timeline.advance_to(2.0)
        assert any("traffic snapshot" in r.message and "jam" in r.message
                   for r in caplog.records)

    def test_quiet_by_default(self, ring, ring_batch, capsys):
        """No handler configured -> nothing printed (library etiquette)."""
        GlobalCacheAnswerer(ring).build(ring_batch[:10])
        captured = capsys.readouterr()
        assert "global cache built" not in captured.out
        assert "global cache built" not in captured.err
