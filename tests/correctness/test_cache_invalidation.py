"""Version-keyed cache invalidation: stale hits must be impossible.

:class:`VersionedPathCache` pins its contents to ``graph.version`` and
self-clears on mismatch, so a weight update can never leak a pre-update
distance.  The property tests interleave random weight mutations
(``set_weight`` / ``scale_weights``) with inserts and lookups and assert
the zero-stale-hit invariant directly: **every** hit equals the current
Dijkstra distance, computed against the graph as it stands at lookup
time.  A second suite drives the full streaming service across weight
epochs and checks the same end-to-end.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.cache import VersionedPathCache
from repro.network.generators import grid_city
from repro.network.timeline import TrafficTimeline, congestion_snapshot
from repro.queries.arrivals import PoissonArrivals
from repro.queries.workload import WorkloadGenerator
from repro.search.dijkstra import dijkstra
from repro.streaming import StreamingQueryService

from tests.correctness.conftest import CORRECTNESS

CACHE_SETTINGS = settings(CORRECTNESS, max_examples=100)


def fresh_graph(seed: int):
    return grid_city(4, 4, seed=seed)


#: One interleaved step: either a mutation or a query.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.integers(0, 10 ** 6),
                  st.floats(0.1, 5.0, allow_nan=False)),
        st.tuples(st.just("scale"), st.integers(0, 10 ** 6),
                  st.floats(1.1, 2.0, allow_nan=False)),
        st.tuples(st.just("query"), st.integers(0, 10 ** 6),
                  st.integers(0, 10 ** 6)),
    ),
    min_size=5,
    max_size=40,
)


class TestVersionedPathCacheProperty:
    @given(st.integers(0, 20), steps)
    @CACHE_SETTINGS
    def test_no_stale_hit_survives_any_mutation_interleaving(self, seed, plan):
        graph = fresh_graph(seed)
        edges = [(u, v) for u, v, _ in graph.edges()]
        n = graph.num_vertices
        cache = VersionedPathCache(graph, 256 * 1024, eviction="lru")
        for step in plan:
            kind = step[0]
            if kind == "set":
                u, v = edges[step[1] % len(edges)]
                graph.set_weight(u, v, step[2])
            elif kind == "scale":
                u, v = edges[step[1] % len(edges)]
                graph.scale_weights(step[2], [(u, v)])
            else:
                s, t = step[1] % n, step[2] % n
                truth = dijkstra(graph, s, t)
                hit = cache.lookup(s, t)
                if hit is not None:
                    # The zero-stale-hits invariant: any hit must match
                    # the graph as it stands right now.
                    assert math.isclose(
                        hit.distance, truth.distance, rel_tol=1e-9
                    ), (
                        f"stale hit for {s}->{t}: cached {hit.distance}, "
                        f"current {truth.distance}"
                    )
                elif math.isfinite(truth.distance) and len(truth.path) >= 2:
                    cache.insert(truth.path)

    def test_version_bump_clears_and_counts(self):
        graph = fresh_graph(0)
        cache = VersionedPathCache(graph, 64 * 1024)
        path = dijkstra(graph, 0, graph.num_vertices - 1).path
        cache.insert(path)
        assert len(cache) > 0
        u, v, w = next(iter(graph.edges()))
        graph.set_weight(u, v, w * 3.0)
        assert cache.lookup(path[0], path[-1]) is None
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.version == graph.version


class TestStreamingServiceAcrossEpochs:
    @given(st.integers(0, 15), st.sampled_from([1, 2, 3]))
    @settings(CORRECTNESS, max_examples=25)
    def test_zero_stale_answers_across_weight_epochs(self, seed, num_epochs):
        """Drive the service through weight epochs; every window answered
        after the final epoch must be exact against the final graph, and
        every epoch must have invalidated the stream cache."""
        graph = grid_city(4, 4, seed=seed)
        workload = WorkloadGenerator(graph, seed=seed + 1)
        arrivals = PoissonArrivals(
            workload, rate=150.0, seed=seed
        ).duration(1.2)
        timeline = TrafficTimeline(graph, seed=seed)
        epoch_times = [0.3 * (k + 1) for k in range(num_epochs)]
        for at in epoch_times:
            timeline.schedule(at, congestion_snapshot(fraction=0.5))
        with StreamingQueryService(
            graph,
            window_seconds=0.1,
            max_batch=16,
            workers=0,
            clock="simulated",
            timeline=timeline,
        ) as service:
            report = service.run(arrivals)
        assert report.unaccounted_queries == 0
        assert report.stream_cache_invalidations == num_epochs
        # Identify answers completed after the last epoch and re-check
        # them against the final graph state.
        last_epoch = epoch_times[-1]
        checked = 0
        offset = 0
        for w in report.windows:
            span = [a for a in report.answers[offset:offset + w.queries]]
            offset += w.queries
            if w.cut_at <= last_epoch:
                continue
            for q, r in span:
                truth = dijkstra(graph, q.source, q.target).distance
                assert math.isclose(r.distance, truth, rel_tol=1e-9), (
                    f"stale answer after epoch: {q} got {r.distance}, "
                    f"final graph {truth}"
                )
                checked += 1
        assert checked > 0, "stream should extend past the final epoch"
