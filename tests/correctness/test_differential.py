"""Differential suite: six shortest-path algorithms against one oracle.

Every point-to-point algorithm in the library — A*, bidirectional
Dijkstra, bidirectional A*, Contraction Hierarchies, Pruned Landmark
Labeling — must return *exactly* the Dijkstra distance on randomized
(graph, source, target) cases drawn from the shared pool, including the
degenerate ``source == target`` case.  Index structures are built once
per graph and reused across examples, so 200 cases per algorithm stay
cheap enough for tier-1.
"""

import math
from typing import Dict

from hypothesis import given

from repro.index.ch import ContractionHierarchy
from repro.index.pll import PrunedLandmarkLabeling
from repro.search.astar import a_star
from repro.search.bidirectional import bidirectional_dijkstra
from repro.search.bidirectional_astar import bidirectional_a_star
from repro.search.dijkstra import dijkstra
from tests.conftest import assert_valid_path

from tests.correctness.conftest import (
    CORRECTNESS,
    GRAPH_POOL,
    graph_key_and_batch,
    graph_key_and_pair,
)

_CH: Dict[str, ContractionHierarchy] = {}
_PLL: Dict[str, PrunedLandmarkLabeling] = {}


def ch_for(graph_key: str) -> ContractionHierarchy:
    if graph_key not in _CH:
        _CH[graph_key] = ContractionHierarchy(GRAPH_POOL[graph_key])
    return _CH[graph_key]


def pll_for(graph_key: str) -> PrunedLandmarkLabeling:
    if graph_key not in _PLL:
        _PLL[graph_key] = PrunedLandmarkLabeling(GRAPH_POOL[graph_key])
    return _PLL[graph_key]


class TestSearchAlgorithmsAgree:
    @given(graph_key_and_pair())
    @CORRECTNESS
    def test_path_searches_match_dijkstra(self, drawn):
        graph_key, source, target = drawn
        graph = GRAPH_POOL[graph_key]
        truth = dijkstra(graph, source, target)
        contenders = {
            "a_star": a_star(graph, source, target),
            "bidirectional": bidirectional_dijkstra(graph, source, target),
            "bidirectional_a_star": bidirectional_a_star(graph, source, target),
        }
        for name, result in contenders.items():
            assert math.isclose(
                result.distance, truth.distance, rel_tol=1e-9, abs_tol=1e-12
            ), f"{name} on {graph_key}: {source}->{target} gave "\
               f"{result.distance}, dijkstra {truth.distance}"
            if math.isfinite(result.distance) and source != target:
                assert_valid_path(
                    graph, result.path, source, target, result.distance
                )

    @given(graph_key_and_pair())
    @CORRECTNESS
    def test_distance_indexes_match_dijkstra(self, drawn):
        graph_key, source, target = drawn
        graph = GRAPH_POOL[graph_key]
        truth = dijkstra(graph, source, target).distance
        ch = ch_for(graph_key).distance(source, target)
        pll = pll_for(graph_key).distance(source, target)
        assert math.isclose(ch, truth, rel_tol=1e-9, abs_tol=1e-12), (
            f"CH on {graph_key}: {source}->{target} gave {ch}, "
            f"dijkstra {truth}"
        )
        assert math.isclose(pll, truth, rel_tol=1e-9, abs_tol=1e-12), (
            f"PLL on {graph_key}: {source}->{target} gave {pll}, "
            f"dijkstra {truth}"
        )

    def test_self_query_is_zero_everywhere(self):
        for graph_key, graph in GRAPH_POOL.items():
            v = graph.num_vertices // 2
            assert dijkstra(graph, v, v).distance == 0.0
            assert a_star(graph, v, v).distance == 0.0
            assert bidirectional_dijkstra(graph, v, v).distance == 0.0
            assert bidirectional_a_star(graph, v, v).distance == 0.0
            assert ch_for(graph_key).distance(v, v) == 0.0
            assert pll_for(graph_key).distance(v, v) == 0.0


# ----------------------------------------------------------------------
# Vectorized numpy kernels vs the dict oracle
# ----------------------------------------------------------------------
_FROZEN: Dict[str, object] = {}


def frozen_for(graph_key: str):
    """A frozen *copy* of a pool graph (pool graphs stay unfrozen so the
    other suites keep exercising the dict dispatch path)."""
    if graph_key not in _FROZEN:
        clone = GRAPH_POOL[graph_key].copy()
        _FROZEN[graph_key] = clone.freeze()
    return _FROZEN[graph_key]


class TestNumpyKernelsAgree:
    """Delta-stepping / batched one-to-many / vectorized balls vs Dijkstra.

    The pool graphs carry jittered weights, so finite distances are
    distinct and the exactness contract covers paths, parents and visited
    counts bit-for-bit — not just distances.
    """

    @given(graph_key_and_pair())
    @CORRECTNESS
    def test_np_point_kernels_match_dijkstra(self, drawn):
        from repro.search import np_kernels

        if not np_kernels.np_available():
            return
        graph_key, source, target = drawn
        graph = GRAPH_POOL[graph_key]
        csr = frozen_for(graph_key)
        truth = dijkstra(graph, source, target)
        got = np_kernels.np_dijkstra(csr, source, target)
        assert (got.distance, got.path, got.visited) == (
            truth.distance, truth.path, truth.visited,
        ), f"np_dijkstra diverged on {graph_key}: {source}->{target}"
        radius = truth.distance if math.isfinite(truth.distance) else 2.0
        from repro.search.dijkstra import bounded_ball_tree, one_to_many

        assert np_kernels.np_bounded_ball_tree(
            csr, source, radius
        ) == bounded_ball_tree(graph, source, radius)
        targets = [target, source, (source + 1) % graph.num_vertices]
        assert np_kernels.np_one_to_many(csr, source, targets) == one_to_many(
            graph, source, targets
        )

    @given(graph_key_and_batch(min_size=4, max_size=12))
    @CORRECTNESS
    def test_np_batch_kernels_match_dijkstra(self, drawn):
        from repro.search import np_kernels

        if not np_kernels.np_available():
            return
        graph_key, batch = drawn
        graph = GRAPH_POOL[graph_key]
        csr = frozen_for(graph_key)
        pairs = [(q.source, q.target) for q in batch]
        got = np_kernels.np_batch_dijkstra(csr, pairs)
        for (source, target), result in zip(pairs, got):
            truth = dijkstra(graph, source, target)
            assert (result.distance, result.path, result.visited) == (
                truth.distance, truth.path, truth.visited,
            ), f"np_batch_dijkstra diverged on {graph_key}: {source}->{target}"
        specs = [(pairs[0][0], False), (pairs[0][0], True),
                 (pairs[0][1], False), (pairs[0][1], True)]
        from repro.search.dijkstra import bounded_ball_tree

        balls = np_kernels.np_multi_bounded_ball_tree(csr, specs, 2.5)
        for (src, backward), ball in zip(specs, balls):
            assert ball == bounded_ball_tree(graph, src, 2.5, backward)

    def test_mutation_query_interleaving(self):
        """np answers track mutations across refreeze boundaries."""
        from repro.network.generators import grid_city
        from repro.search import np_kernels

        if not np_kernels.np_available():
            return
        import random as _random

        graph = grid_city(5, 5, seed=41)
        rng = _random.Random(13)
        edges = list(graph.edges())
        for round_no in range(6):
            csr = graph.freeze()
            for _ in range(8):
                s, t = rng.randrange(25), rng.randrange(25)
                truth = dijkstra(graph, s, t)
                got = np_kernels.np_dijkstra(csr, s, t)
                assert (got.distance, got.path, got.visited) == (
                    truth.distance, truth.path, truth.visited,
                ), f"diverged after {round_no} mutation rounds"
            for u, v, _w in rng.sample(edges, 4):
                graph.set_weight(u, v, rng.uniform(0.5, 4.0))

    def test_forced_no_numpy_fallback_identical(self, monkeypatch):
        """The same queries answer bit-identically with numpy forced on,
        with the scalar backend forced, and with numpy absent entirely."""
        from repro.network.generators import grid_city
        from repro.search import np_kernels

        if not np_kernels.np_available():
            return
        import random as _random

        frozen = grid_city(6, 6, seed=7)
        frozen.freeze()
        rng = _random.Random(3)
        cases = [(rng.randrange(36), rng.randrange(36)) for _ in range(20)]

        def run():
            return [
                (r.distance, tuple(r.path), r.visited)
                for r in (dijkstra(frozen, s, t) for s, t in cases)
            ]

        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "np")
        with_np = run()
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "csr")
        scalar = run()
        monkeypatch.delenv(np_kernels.BACKEND_KNOB)
        monkeypatch.setattr(np_kernels, "_numpy", None)
        without_numpy = run()
        assert with_np == scalar == without_numpy
