"""Differential suite: six shortest-path algorithms against one oracle.

Every point-to-point algorithm in the library — A*, bidirectional
Dijkstra, bidirectional A*, Contraction Hierarchies, Pruned Landmark
Labeling — must return *exactly* the Dijkstra distance on randomized
(graph, source, target) cases drawn from the shared pool, including the
degenerate ``source == target`` case.  Index structures are built once
per graph and reused across examples, so 200 cases per algorithm stay
cheap enough for tier-1.
"""

import math
from typing import Dict

from hypothesis import given

from repro.index.ch import ContractionHierarchy
from repro.index.pll import PrunedLandmarkLabeling
from repro.search.astar import a_star
from repro.search.bidirectional import bidirectional_dijkstra
from repro.search.bidirectional_astar import bidirectional_a_star
from repro.search.dijkstra import dijkstra
from tests.conftest import assert_valid_path

from tests.correctness.conftest import CORRECTNESS, GRAPH_POOL, graph_key_and_pair

_CH: Dict[str, ContractionHierarchy] = {}
_PLL: Dict[str, PrunedLandmarkLabeling] = {}


def ch_for(graph_key: str) -> ContractionHierarchy:
    if graph_key not in _CH:
        _CH[graph_key] = ContractionHierarchy(GRAPH_POOL[graph_key])
    return _CH[graph_key]


def pll_for(graph_key: str) -> PrunedLandmarkLabeling:
    if graph_key not in _PLL:
        _PLL[graph_key] = PrunedLandmarkLabeling(GRAPH_POOL[graph_key])
    return _PLL[graph_key]


class TestSearchAlgorithmsAgree:
    @given(graph_key_and_pair())
    @CORRECTNESS
    def test_path_searches_match_dijkstra(self, drawn):
        graph_key, source, target = drawn
        graph = GRAPH_POOL[graph_key]
        truth = dijkstra(graph, source, target)
        contenders = {
            "a_star": a_star(graph, source, target),
            "bidirectional": bidirectional_dijkstra(graph, source, target),
            "bidirectional_a_star": bidirectional_a_star(graph, source, target),
        }
        for name, result in contenders.items():
            assert math.isclose(
                result.distance, truth.distance, rel_tol=1e-9, abs_tol=1e-12
            ), f"{name} on {graph_key}: {source}->{target} gave "\
               f"{result.distance}, dijkstra {truth.distance}"
            if math.isfinite(result.distance) and source != target:
                assert_valid_path(
                    graph, result.path, source, target, result.distance
                )

    @given(graph_key_and_pair())
    @CORRECTNESS
    def test_distance_indexes_match_dijkstra(self, drawn):
        graph_key, source, target = drawn
        graph = GRAPH_POOL[graph_key]
        truth = dijkstra(graph, source, target).distance
        ch = ch_for(graph_key).distance(source, target)
        pll = pll_for(graph_key).distance(source, target)
        assert math.isclose(ch, truth, rel_tol=1e-9, abs_tol=1e-12), (
            f"CH on {graph_key}: {source}->{target} gave {ch}, "
            f"dijkstra {truth}"
        )
        assert math.isclose(pll, truth, rel_tol=1e-9, abs_tol=1e-12), (
            f"PLL on {graph_key}: {source}->{target} gave {pll}, "
            f"dijkstra {truth}"
        )

    def test_self_query_is_zero_everywhere(self):
        for graph_key, graph in GRAPH_POOL.items():
            v = graph.num_vertices // 2
            assert dijkstra(graph, v, v).distance == 0.0
            assert a_star(graph, v, v).distance == 0.0
            assert bidirectional_dijkstra(graph, v, v).distance == 0.0
            assert bidirectional_a_star(graph, v, v).distance == 0.0
            assert ch_for(graph_key).distance(v, v) == 0.0
            assert pll_for(graph_key).distance(v, v) == 0.0
