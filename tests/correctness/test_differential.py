"""Differential suite: six shortest-path algorithms against one oracle.

Every point-to-point algorithm in the library — A*, bidirectional
Dijkstra, bidirectional A*, Contraction Hierarchies, Pruned Landmark
Labeling — must return *exactly* the Dijkstra distance on randomized
(graph, source, target) cases drawn from the shared pool, including the
degenerate ``source == target`` case.  Index structures are built once
per graph and reused across examples, so 200 cases per algorithm stay
cheap enough for tier-1.
"""

import math
import random
from typing import Dict

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.index.cch import CustomizableContractionHierarchy
from repro.index.ch import ContractionHierarchy
from repro.index.pll import PrunedLandmarkLabeling
from repro.network.timeline import congestion_snapshot
from repro.search.astar import a_star
from repro.search.bidirectional import bidirectional_dijkstra
from repro.search.bidirectional_astar import bidirectional_a_star
from repro.search.dijkstra import dijkstra
from tests.conftest import assert_valid_path

from tests.correctness.conftest import (
    CORRECTNESS,
    GRAPH_POOL,
    graph_key_and_batch,
    graph_key_and_pair,
)

_CH: Dict[str, ContractionHierarchy] = {}
_PLL: Dict[str, PrunedLandmarkLabeling] = {}


def ch_for(graph_key: str) -> ContractionHierarchy:
    if graph_key not in _CH:
        _CH[graph_key] = ContractionHierarchy(GRAPH_POOL[graph_key])
    return _CH[graph_key]


def pll_for(graph_key: str) -> PrunedLandmarkLabeling:
    if graph_key not in _PLL:
        _PLL[graph_key] = PrunedLandmarkLabeling(GRAPH_POOL[graph_key])
    return _PLL[graph_key]


class TestSearchAlgorithmsAgree:
    @given(graph_key_and_pair())
    @CORRECTNESS
    def test_path_searches_match_dijkstra(self, drawn):
        graph_key, source, target = drawn
        graph = GRAPH_POOL[graph_key]
        truth = dijkstra(graph, source, target)
        contenders = {
            "a_star": a_star(graph, source, target),
            "bidirectional": bidirectional_dijkstra(graph, source, target),
            "bidirectional_a_star": bidirectional_a_star(graph, source, target),
        }
        for name, result in contenders.items():
            assert math.isclose(
                result.distance, truth.distance, rel_tol=1e-9, abs_tol=1e-12
            ), f"{name} on {graph_key}: {source}->{target} gave "\
               f"{result.distance}, dijkstra {truth.distance}"
            if math.isfinite(result.distance) and source != target:
                assert_valid_path(
                    graph, result.path, source, target, result.distance
                )

    @given(graph_key_and_pair())
    @CORRECTNESS
    def test_distance_indexes_match_dijkstra(self, drawn):
        graph_key, source, target = drawn
        graph = GRAPH_POOL[graph_key]
        truth = dijkstra(graph, source, target).distance
        ch = ch_for(graph_key).distance(source, target)
        pll = pll_for(graph_key).distance(source, target)
        assert math.isclose(ch, truth, rel_tol=1e-9, abs_tol=1e-12), (
            f"CH on {graph_key}: {source}->{target} gave {ch}, "
            f"dijkstra {truth}"
        )
        assert math.isclose(pll, truth, rel_tol=1e-9, abs_tol=1e-12), (
            f"PLL on {graph_key}: {source}->{target} gave {pll}, "
            f"dijkstra {truth}"
        )

    def test_self_query_is_zero_everywhere(self):
        for graph_key, graph in GRAPH_POOL.items():
            v = graph.num_vertices // 2
            assert dijkstra(graph, v, v).distance == 0.0
            assert a_star(graph, v, v).distance == 0.0
            assert bidirectional_dijkstra(graph, v, v).distance == 0.0
            assert bidirectional_a_star(graph, v, v).distance == 0.0
            assert ch_for(graph_key).distance(v, v) == 0.0
            assert pll_for(graph_key).distance(v, v) == 0.0


# ----------------------------------------------------------------------
# Vectorized numpy kernels vs the dict oracle
# ----------------------------------------------------------------------
_FROZEN: Dict[str, object] = {}


def frozen_for(graph_key: str):
    """A frozen *copy* of a pool graph (pool graphs stay unfrozen so the
    other suites keep exercising the dict dispatch path)."""
    if graph_key not in _FROZEN:
        clone = GRAPH_POOL[graph_key].copy()
        _FROZEN[graph_key] = clone.freeze()
    return _FROZEN[graph_key]


class TestNumpyKernelsAgree:
    """Delta-stepping / batched one-to-many / vectorized balls vs Dijkstra.

    The pool graphs carry jittered weights, so finite distances are
    distinct and the exactness contract covers paths, parents and visited
    counts bit-for-bit — not just distances.
    """

    @given(graph_key_and_pair())
    @CORRECTNESS
    def test_np_point_kernels_match_dijkstra(self, drawn):
        from repro.search import np_kernels

        if not np_kernels.np_available():
            return
        graph_key, source, target = drawn
        graph = GRAPH_POOL[graph_key]
        csr = frozen_for(graph_key)
        truth = dijkstra(graph, source, target)
        got = np_kernels.np_dijkstra(csr, source, target)
        assert (got.distance, got.path, got.visited) == (
            truth.distance, truth.path, truth.visited,
        ), f"np_dijkstra diverged on {graph_key}: {source}->{target}"
        radius = truth.distance if math.isfinite(truth.distance) else 2.0
        from repro.search.dijkstra import bounded_ball_tree, one_to_many

        assert np_kernels.np_bounded_ball_tree(
            csr, source, radius
        ) == bounded_ball_tree(graph, source, radius)
        targets = [target, source, (source + 1) % graph.num_vertices]
        assert np_kernels.np_one_to_many(csr, source, targets) == one_to_many(
            graph, source, targets
        )

    @given(graph_key_and_batch(min_size=4, max_size=12))
    @CORRECTNESS
    def test_np_batch_kernels_match_dijkstra(self, drawn):
        from repro.search import np_kernels

        if not np_kernels.np_available():
            return
        graph_key, batch = drawn
        graph = GRAPH_POOL[graph_key]
        csr = frozen_for(graph_key)
        pairs = [(q.source, q.target) for q in batch]
        got = np_kernels.np_batch_dijkstra(csr, pairs)
        for (source, target), result in zip(pairs, got):
            truth = dijkstra(graph, source, target)
            assert (result.distance, result.path, result.visited) == (
                truth.distance, truth.path, truth.visited,
            ), f"np_batch_dijkstra diverged on {graph_key}: {source}->{target}"
        specs = [(pairs[0][0], False), (pairs[0][0], True),
                 (pairs[0][1], False), (pairs[0][1], True)]
        from repro.search.dijkstra import bounded_ball_tree

        balls = np_kernels.np_multi_bounded_ball_tree(csr, specs, 2.5)
        for (src, backward), ball in zip(specs, balls):
            assert ball == bounded_ball_tree(graph, src, 2.5, backward)

    def test_mutation_query_interleaving(self):
        """np answers track mutations across refreeze boundaries."""
        from repro.network.generators import grid_city
        from repro.search import np_kernels

        if not np_kernels.np_available():
            return
        import random as _random

        graph = grid_city(5, 5, seed=41)
        rng = _random.Random(13)
        edges = list(graph.edges())
        for round_no in range(6):
            csr = graph.freeze()
            for _ in range(8):
                s, t = rng.randrange(25), rng.randrange(25)
                truth = dijkstra(graph, s, t)
                got = np_kernels.np_dijkstra(csr, s, t)
                assert (got.distance, got.path, got.visited) == (
                    truth.distance, truth.path, truth.visited,
                ), f"diverged after {round_no} mutation rounds"
            for u, v, _w in rng.sample(edges, 4):
                graph.set_weight(u, v, rng.uniform(0.5, 4.0))

    def test_forced_no_numpy_fallback_identical(self, monkeypatch):
        """The same queries answer bit-identically with numpy forced on,
        with the scalar backend forced, and with numpy absent entirely."""
        from repro.network.generators import grid_city
        from repro.search import np_kernels

        if not np_kernels.np_available():
            return
        import random as _random

        frozen = grid_city(6, 6, seed=7)
        frozen.freeze()
        rng = _random.Random(3)
        cases = [(rng.randrange(36), rng.randrange(36)) for _ in range(20)]

        def run():
            return [
                (r.distance, tuple(r.path), r.visited)
                for r in (dijkstra(frozen, s, t) for s, t in cases)
            ]

        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "np")
        with_np = run()
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "csr")
        scalar = run()
        monkeypatch.delenv(np_kernels.BACKEND_KNOB)
        monkeypatch.setattr(np_kernels, "_numpy", None)
        without_numpy = run()
        assert with_np == scalar == without_numpy


# ----------------------------------------------------------------------
# Customizable CCH under mutation/query interleavings
# ----------------------------------------------------------------------
class CchMutationMachine(RuleBasedStateMachine):
    """Interleave weight mutations, epoch bumps, re-customizations and
    point-to-point queries in arbitrary order; the customized CCH must
    equal Dijkstra *bit-for-bit* after every step.

    This is the differential contract the index's epoch keying makes:
    no mutation schedule — single-arc tweaks, global rescales, traffic
    snapshots, even arcs added outside the chordal closure — may ever
    surface a stale or misprized shortcut through ``distance()``.
    """

    def __init__(self):
        super().__init__()
        self.graph = GRAPH_POOL["grid4"].copy()
        self.n = self.graph.num_vertices
        self.cch = CustomizableContractionHierarchy(self.graph)
        self.edges = [(u, v) for u, v, _w in self.graph.edges()]

    @rule(pick=st.integers(min_value=0, max_value=10**6),
          w=st.floats(min_value=0.05, max_value=5.0,
                      allow_nan=False, allow_infinity=False))
    def set_weight(self, pick, w):
        u, v = self.edges[pick % len(self.edges)]
        self.graph.set_weight(u, v, w)

    @rule(factor=st.floats(min_value=0.5, max_value=2.0,
                           allow_nan=False, allow_infinity=False))
    def scale_all_weights(self, factor):
        self.graph.scale_weights(factor)

    @rule(factor=st.floats(min_value=0.5, max_value=2.0,
                           allow_nan=False, allow_infinity=False),
          start=st.integers(min_value=0, max_value=10**6),
          count=st.integers(min_value=1, max_value=6))
    def scale_weight_subset(self, factor, start, count):
        m = len(self.edges)
        subset = [self.edges[(start + k) % m] for k in range(count)]
        self.graph.scale_weights(factor, edges=subset)

    @rule(seed=st.integers(min_value=0, max_value=10**6))
    def traffic_epoch(self, seed):
        """A timeline-style epoch: one congestion snapshot's worth of
        jammed arcs, all landing in a single version bump per arc."""
        congestion_snapshot(fraction=0.4)(self.graph, random.Random(seed))

    @rule(seed=st.integers(min_value=0, max_value=10**6),
          w=st.floats(min_value=0.1, max_value=3.0,
                      allow_nan=False, allow_infinity=False))
    def add_edge(self, seed, w):
        rng = random.Random(seed)
        for _ in range(20):
            u, v = rng.randrange(self.n), rng.randrange(self.n)
            if u != v and not self.graph.has_edge(u, v):
                self.graph.add_edge(u, v, w)
                self.edges.append((u, v))
                return

    @rule()
    def recustomize(self):
        self.cch.ensure_current()
        assert not self.cch.stale

    @rule(s=st.integers(min_value=0, max_value=10**6),
          t=st.integers(min_value=0, max_value=10**6))
    def query(self, s, t):
        s, t = s % self.n, t % self.n
        want = dijkstra(self.graph, s, t).distance
        got = self.cch.distance(s, t)
        assert got == want, (
            f"CCH diverged on {s}->{t} at version {self.graph.version}: "
            f"index {got!r}, dijkstra {want!r}"
        )
        assert not self.cch.stale


TestCchMutationInterleaving = CchMutationMachine.TestCase
TestCchMutationInterleaving.settings = settings(
    CORRECTNESS, stateful_step_count=15
)


class TestCchCustomizationIdempotent:
    """Customization is idempotent and path-independent: only the final
    metric matters, never the mutation schedule that produced it."""

    @given(st.sampled_from(sorted(GRAPH_POOL)),
           st.integers(min_value=0, max_value=10**6))
    @CORRECTNESS
    def test_shortcut_weights_depend_only_on_final_metric(
        self, graph_key, seed
    ):
        graph = GRAPH_POOL[graph_key].copy()
        cch = CustomizableContractionHierarchy(graph)
        rng = random.Random(seed)
        edges = [(u, v) for u, v, _w in graph.edges()]
        for _ in range(rng.randrange(1, 12)):
            op = rng.randrange(3)
            if op == 0:
                u, v = rng.choice(edges)
                graph.set_weight(u, v, rng.uniform(0.05, 5.0))
            elif op == 1:
                graph.scale_weights(rng.uniform(0.5, 2.0))
            else:
                subset = rng.sample(edges, rng.randrange(1, 5))
                graph.scale_weights(rng.uniform(0.5, 2.0), edges=subset)
            # Optionally customize mid-sequence — must not matter.
            if rng.random() < 0.3:
                cch.customize()
        once = cch.customize()
        assert once >= 0.0
        first = cch.shortcut_weights()
        cch.customize()
        assert cch.shortcut_weights() == first, "customize not idempotent"
        # Path independence: a fresh order+customization of the final
        # metric yields the very same arrays (the order is deterministic,
        # so super-edge ids line up one-to-one).
        fresh = CustomizableContractionHierarchy(graph)
        assert fresh.rank == cch.rank
        assert fresh.shortcut_weights() == first, (
            "customized weights depend on the mutation path taken"
        )

    @given(st.sampled_from(["grid4", "grid5", "ring"]),
           st.integers(min_value=0, max_value=10**6))
    @settings(CORRECTNESS, max_examples=60)
    def test_recustomization_matches_full_legacy_rebuild(
        self, graph_key, seed
    ):
        """After any weight-mutation sequence, the re-customized CCH and
        a from-scratch legacy CH rebuild agree with Dijkstra on sampled
        pairs — the customization shortcut loses nothing vs paying for
        the full witness-search rebuild."""
        graph = GRAPH_POOL[graph_key].copy()
        cch = CustomizableContractionHierarchy(graph)
        rng = random.Random(seed)
        edges = [(u, v) for u, v, _w in graph.edges()]
        for _ in range(rng.randrange(1, 8)):
            u, v = rng.choice(edges)
            graph.set_weight(u, v, rng.uniform(0.05, 5.0))
        legacy = ContractionHierarchy(graph)
        n = graph.num_vertices
        for _ in range(6):
            s, t = rng.randrange(n), rng.randrange(n)
            truth = dijkstra(graph, s, t).distance
            assert cch.distance(s, t) == truth
            assert math.isclose(
                legacy.distance(s, t), truth, rel_tol=1e-9, abs_tol=1e-12
            )
