"""Hypothesis pin for the closed ball-membership boundary (``nd <= radius``).

R2R's correctness argument needs the ``2 r*`` ball to be *closed*: a
vertex whose shortest distance lands exactly on the radius is a member.
The strategy below draws graphs whose weights are small binary fractions
(so path sums reproduce exactly in floats), then sets the radius to a
*realized* shortest-path distance — every example exercises at least one
vertex sitting precisely on the boundary, including vertices connected by
zero-weight edges to boundary vertices (equal distance, also members).

All three backends — dict graph, scalar CSR, vectorized numpy — must
report identical membership and identical (bit-equal) distances.
"""

import math

from hypothesis import given, strategies as st

from repro.search import np_kernels
from repro.search.csr_kernels import csr_bounded_ball, csr_bounded_ball_tree
from repro.search.dijkstra import bounded_ball, bounded_ball_tree, sssp_distances

from tests.correctness.conftest import CORRECTNESS

#: Binary-fraction weights: every path sum is exact in float64, so a
#: boundary vertex's distance equals the radius bit-for-bit.  The zeros
#: create ties *at* the boundary.
WEIGHTS = st.sampled_from([0.0, 0.0, 0.25, 0.5, 1.0, 1.5, 2.0])


@st.composite
def ball_cases(draw):
    n = draw(st.integers(min_value=4, max_value=10))
    edges = {}
    for i in range(1, n):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        w = draw(WEIGHTS)
        edges[(i, j)] = w
        edges[(j, i)] = w
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v and (u, v) not in edges:
            edges[(u, v)] = draw(WEIGHTS)
    source = draw(st.integers(min_value=0, max_value=n - 1))
    boundary = draw(st.integers(min_value=0, max_value=n - 1))
    backward = draw(st.booleans())
    return n, sorted(edges.items()), source, boundary, backward


def build(n, edges):
    from repro.network.graph import RoadNetwork

    graph = RoadNetwork([float(i) for i in range(n)], [0.0] * n)
    for (u, v), w in edges:
        graph.add_edge(u, v, w)
    return graph


@given(ball_cases())
@CORRECTNESS
def test_boundary_membership_identical_across_backends(case):
    n, edges, source, boundary, backward = case
    graph = build(n, edges)
    dist = sssp_distances(graph, source, backward)
    # Radius = a realized distance: `boundary` (and every vertex tied with
    # it, zero-weight neighbours included) sits exactly on the closed
    # boundary.  Unreachable draw degrades to a plain radius, still valid.
    radius = dist[boundary] if math.isfinite(dist[boundary]) else 1.0

    ref_done, ref_visited = bounded_ball(graph, source, radius, backward)
    if math.isfinite(dist[boundary]):
        assert boundary in ref_done, "closed boundary must include the vertex"
        assert ref_done[boundary] == radius
    ref_tree = bounded_ball_tree(graph, source, radius, backward)
    assert ref_tree[0] == ref_done and ref_tree[2] == ref_visited

    csr = graph.freeze()
    assert csr_bounded_ball(csr, source, radius, backward) == (ref_done, ref_visited)
    tree = csr_bounded_ball_tree(csr, source, radius, backward)
    assert tree[0] == ref_done and tree[2] == ref_visited

    if np_kernels.np_available():
        assert np_kernels.np_bounded_ball(csr, source, radius, backward) == (
            ref_done, ref_visited,
        )
        np_tree = np_kernels.np_bounded_ball_tree(csr, source, radius, backward)
        assert np_tree[0] == ref_done and np_tree[2] == ref_visited
