"""Streaming-vs-offline oracle: the online service must equal batch mode.

The streaming service adds windows, admission control, caching, and a
clock — none of which may change *answers*.  For any arrival stream, the
simulated-clock :class:`StreamingQueryService` must produce exactly the
per-query distances of the offline :meth:`BatchProcessor.process_timed`
replay (grid windows, exact ``slc-s`` pipeline), with zero dropped
queries.  This holds regardless of how differently the micro-batcher
sliced the stream — windowing is a scheduling concern, not a semantic
one.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.batch_runner import BatchProcessor
from repro.network.generators import grid_city
from repro.network.timeline import TrafficTimeline, congestion_snapshot
from repro.obs import MetricsRegistry, use_registry
from repro.queries.arrivals import PoissonArrivals
from repro.queries.workload import WorkloadGenerator
from repro.search.dijkstra import dijkstra
from repro.streaming import StreamingQueryService

from tests.correctness.conftest import (
    CORRECTNESS,
    GRAPH_POOL,
    workload_for,
)

#: Fewer examples than the pure suites: each case runs a full streaming
#: service plus an offline replay.  Still >= 200 streams per run across
#: the three stream-shape tests below.
STREAMING_ORACLE = settings(CORRECTNESS, max_examples=70)


@st.composite
def stream_case(draw):
    graph_key = draw(st.sampled_from(sorted(GRAPH_POOL)))
    seed = draw(st.integers(min_value=0, max_value=30))
    rate = draw(st.sampled_from([40.0, 120.0, 300.0]))
    duration = draw(st.sampled_from([0.5, 1.0, 2.0]))
    arrivals = PoissonArrivals(
        workload_for(graph_key, seed), rate=rate, seed=seed
    ).duration(duration)
    return graph_key, arrivals


def offline_distances(graph, arrivals):
    answers = BatchProcessor(graph).process_timed(
        arrivals, method="slc-s", window_seconds=1.0
    )
    return sorted(
        (q.source, q.target, round(r.distance, 9))
        for batch in answers
        for q, r in batch.answers
    )


def online_distances(graph, arrivals, **kwargs):
    kwargs.setdefault("window_seconds", 0.25)
    kwargs.setdefault("max_batch", 32)
    kwargs.setdefault("workers", 0)
    with StreamingQueryService(graph, clock="simulated", **kwargs) as service:
        report = service.run(arrivals)
    assert report.unaccounted_queries == 0
    assert report.dropped_queries == 0
    return sorted(
        (s, t, round(d, 9)) for s, t, d in report.distances()
    )


class TestStreamingEqualsOffline:
    @given(stream_case())
    @STREAMING_ORACLE
    def test_default_configuration(self, drawn):
        graph_key, arrivals = drawn
        graph = GRAPH_POOL[graph_key]
        assert online_distances(graph, arrivals) == offline_distances(
            graph, arrivals
        )

    @given(stream_case(), st.sampled_from([0.05, 0.4, 1.5]),
           st.sampled_from([1, 8, None]))
    @STREAMING_ORACLE
    def test_any_window_slicing(self, drawn, window_seconds, max_batch):
        """The dual trigger may slice the stream arbitrarily; answers are
        invariant to the slicing."""
        graph_key, arrivals = drawn
        graph = GRAPH_POOL[graph_key]
        online = online_distances(
            graph, arrivals,
            window_seconds=window_seconds, max_batch=max_batch,
        )
        assert online == offline_distances(graph, arrivals)

    @given(stream_case())
    @STREAMING_ORACLE
    def test_overload_with_degrade_shedding(self, drawn):
        """Even when admission sheds most of the stream to the degrade
        path, answered distances equal the offline batch run."""
        graph_key, arrivals = drawn
        graph = GRAPH_POOL[graph_key]
        online = online_distances(
            graph, arrivals,
            window_seconds=0.1, max_batch=8,
            queue_capacity=2, service_seconds_per_query=0.02,
        )
        assert online == offline_distances(graph, arrivals)

    @given(stream_case())
    @STREAMING_ORACLE
    def test_cch_index_backend_equals_offline(self, drawn):
        """Static graph, hierarchy-served: routing every window through
        the customized CCH instead of the Dijkstra backend changes
        nothing about the answers."""
        graph_key, arrivals = drawn
        graph = GRAPH_POOL[graph_key]
        online = online_distances(graph, arrivals, index="cch")
        assert online == offline_distances(graph, arrivals)


# ----------------------------------------------------------------------
# Cross-epoch oracle: the customized index under a traffic timeline
# ----------------------------------------------------------------------
def _epoch_run(seed: int, num_epochs: int, index: str):
    """One timeline-driven streaming run; returns (report, registry).

    Graph, workload, arrivals and timeline are all derived from ``seed``
    alone, so two calls with different ``index`` values see bit-identical
    inputs — the dual-run oracle's premise.
    """
    graph = grid_city(4, 4, seed=seed)
    workload = WorkloadGenerator(graph, seed=seed + 1)
    arrivals = PoissonArrivals(workload, rate=150.0, seed=seed).duration(1.2)
    timeline = TrafficTimeline(graph, seed=seed)
    for k in range(num_epochs):
        timeline.schedule(0.3 * (k + 1), congestion_snapshot(fraction=0.5))
    reg = MetricsRegistry()
    with use_registry(reg):
        with StreamingQueryService(
            graph,
            window_seconds=0.1,
            max_batch=16,
            workers=0,
            clock="simulated",
            timeline=timeline,
            index=index,
        ) as service:
            report = service.run(arrivals)
    assert report.unaccounted_queries == 0
    assert report.dropped_queries == 0
    return graph, report, reg


class TestCustomizedIndexAcrossEpochs:
    """The streaming tier served from the customized CCH must follow
    every traffic epoch: answers equal the plain-backend run and the
    offline per-epoch replay, and the obs counters prove no window was
    ever served from a stale customization."""

    @given(st.integers(0, 15), st.sampled_from([1, 2, 3]))
    @settings(CORRECTNESS, max_examples=20)
    def test_index_run_equals_backend_run(self, seed, num_epochs):
        _, backend_report, _ = _epoch_run(seed, num_epochs, index="none")
        _, index_report, reg = _epoch_run(seed, num_epochs, index="cch")
        # round(9): near-ties may resolve to either of two equal-length
        # paths whose float sums differ in the last ulp — the same
        # tolerance the offline/online helpers above apply.
        assert sorted(
            (s, t, round(d, 9)) for s, t, d in index_report.distances()
        ) == sorted(
            (s, t, round(d, 9)) for s, t, d in backend_report.distances()
        )
        # Every missed window went through the hierarchy, and every
        # epoch triggered exactly one re-customization before the next
        # window was answered — zero stale windows, zero wasted passes.
        assert index_report.index_served_windows > 0
        assert index_report.index_customizations == num_epochs
        assert index_report.stream_cache_invalidations == num_epochs
        counters = reg.snapshot().counters
        assert counters["index.customize_runs"] == 1 + num_epochs
        assert counters.get("index.order_builds", 0) == 0, (
            "a weight-only timeline must never force an order rebuild"
        )
        assert (
            counters["streaming.index_served_windows"]
            == index_report.index_served_windows
        )

    @given(st.integers(0, 15), st.sampled_from([1, 2, 3]))
    @settings(CORRECTNESS, max_examples=15)
    def test_index_windows_match_offline_per_epoch_replay(
        self, seed, num_epochs
    ):
        """Replay the same timeline offline and advance it to each
        window's cut: every answer the index served must equal Dijkstra
        on the graph exactly as it stood at that window's epoch."""
        _, report, _ = _epoch_run(seed, num_epochs, index="cch")
        offline_graph = grid_city(4, 4, seed=seed)
        offline_timeline = TrafficTimeline(offline_graph, seed=seed)
        for k in range(num_epochs):
            offline_timeline.schedule(
                0.3 * (k + 1), congestion_snapshot(fraction=0.5)
            )
        offset = 0
        checked = 0
        for w in report.windows:
            span = report.answers[offset:offset + w.queries]
            offset += w.queries
            offline_timeline.advance_to(w.cut_at)
            for q, r in span:
                truth = dijkstra(offline_graph, q.source, q.target).distance
                assert math.isclose(
                    r.distance, truth, rel_tol=1e-9, abs_tol=1e-12
                ), (
                    f"window cut {w.cut_at}: {q.source}->{q.target} served "
                    f"{r.distance!r}, offline epoch says {truth!r}"
                )
                checked += 1
        assert checked > 0
