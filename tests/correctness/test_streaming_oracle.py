"""Streaming-vs-offline oracle: the online service must equal batch mode.

The streaming service adds windows, admission control, caching, and a
clock — none of which may change *answers*.  For any arrival stream, the
simulated-clock :class:`StreamingQueryService` must produce exactly the
per-query distances of the offline :meth:`BatchProcessor.process_timed`
replay (grid windows, exact ``slc-s`` pipeline), with zero dropped
queries.  This holds regardless of how differently the micro-batcher
sliced the stream — windowing is a scheduling concern, not a semantic
one.
"""

from hypothesis import given, settings, strategies as st

from repro.core.batch_runner import BatchProcessor
from repro.queries.arrivals import PoissonArrivals
from repro.streaming import StreamingQueryService

from tests.correctness.conftest import (
    CORRECTNESS,
    GRAPH_POOL,
    workload_for,
)

#: Fewer examples than the pure suites: each case runs a full streaming
#: service plus an offline replay.  Still >= 200 streams per run across
#: the three stream-shape tests below.
STREAMING_ORACLE = settings(CORRECTNESS, max_examples=70)


@st.composite
def stream_case(draw):
    graph_key = draw(st.sampled_from(sorted(GRAPH_POOL)))
    seed = draw(st.integers(min_value=0, max_value=30))
    rate = draw(st.sampled_from([40.0, 120.0, 300.0]))
    duration = draw(st.sampled_from([0.5, 1.0, 2.0]))
    arrivals = PoissonArrivals(
        workload_for(graph_key, seed), rate=rate, seed=seed
    ).duration(duration)
    return graph_key, arrivals


def offline_distances(graph, arrivals):
    answers = BatchProcessor(graph).process_timed(
        arrivals, method="slc-s", window_seconds=1.0
    )
    return sorted(
        (q.source, q.target, round(r.distance, 9))
        for batch in answers
        for q, r in batch.answers
    )


def online_distances(graph, arrivals, **kwargs):
    kwargs.setdefault("window_seconds", 0.25)
    kwargs.setdefault("max_batch", 32)
    kwargs.setdefault("workers", 0)
    with StreamingQueryService(graph, clock="simulated", **kwargs) as service:
        report = service.run(arrivals)
    assert report.unaccounted_queries == 0
    assert report.dropped_queries == 0
    return sorted(
        (s, t, round(d, 9)) for s, t, d in report.distances()
    )


class TestStreamingEqualsOffline:
    @given(stream_case())
    @STREAMING_ORACLE
    def test_default_configuration(self, drawn):
        graph_key, arrivals = drawn
        graph = GRAPH_POOL[graph_key]
        assert online_distances(graph, arrivals) == offline_distances(
            graph, arrivals
        )

    @given(stream_case(), st.sampled_from([0.05, 0.4, 1.5]),
           st.sampled_from([1, 8, None]))
    @STREAMING_ORACLE
    def test_any_window_slicing(self, drawn, window_seconds, max_batch):
        """The dual trigger may slice the stream arbitrarily; answers are
        invariant to the slicing."""
        graph_key, arrivals = drawn
        graph = GRAPH_POOL[graph_key]
        online = online_distances(
            graph, arrivals,
            window_seconds=window_seconds, max_batch=max_batch,
        )
        assert online == offline_distances(graph, arrivals)

    @given(stream_case())
    @STREAMING_ORACLE
    def test_overload_with_degrade_shedding(self, drawn):
        """Even when admission sheds most of the stream to the degrade
        path, answered distances equal the offline batch run."""
        graph_key, arrivals = drawn
        graph = GRAPH_POOL[graph_key]
        online = online_distances(
            graph, arrivals,
            window_seconds=0.1, max_batch=8,
            queue_capacity=2, service_seconds_per_query=0.02,
        )
        assert online == offline_distances(graph, arrivals)
