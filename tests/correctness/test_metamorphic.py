"""Metamorphic suite: batch-processing invariances the paper relies on.

Two metamorphic relations over every decomposer (Zigzag, Search-Space
Estimation, Co-Clustering) with the exact Local Cache answerer:

* **Permutation invariance** — reordering the queries of a batch must
  not change any answered distance.  Clustering *is* order-sensitive
  (different clusters, different cache schedules), so the relation is on
  the answer multiset, not on internal structure.
* **Split/merge invariance** — processing a batch as one call or as two
  arbitrary sub-batches must produce the same distances per query.

Both hold because each decomposed pipeline is exact; violating either
would mean a decomposer's clustering leaked into the *results*, which is
precisely the bug class metamorphic testing catches without needing an
external oracle.  Each answer is additionally checked against the
Dijkstra oracle and validated as a real edge walk.
"""

import math

from hypothesis import given, strategies as st

from repro.core.coclustering import CoClusteringDecomposer
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.core.zigzag import ZigzagDecomposer
from repro.queries.query import QuerySet
from repro.search.dijkstra import dijkstra
from tests.conftest import assert_valid_path

from tests.correctness.conftest import CORRECTNESS, GRAPH_POOL, graph_key_and_batch

DECOMPOSERS = ("zigzag", "sse", "cocluster")


def build_decomposer(kind: str, graph):
    if kind == "zigzag":
        return ZigzagDecomposer(graph)
    if kind == "sse":
        return SearchSpaceDecomposer(graph)
    return CoClusteringDecomposer(graph)


def answer_batch(graph, kind: str, batch: QuerySet):
    """Run one decomposer + exact local-cache pipeline over a batch."""
    decomposition = build_decomposer(kind, graph).decompose(batch)
    answerer = LocalCacheAnswerer(graph, cache_bytes=256 * 1024)
    return build_answer_key(answerer.answer(decomposition, method=kind))


def build_answer_key(answer):
    """The observable result: a sorted multiset of distance triples."""
    return sorted(
        (q.source, q.target, round(r.distance, 9)) for q, r in answer.answers
    )


class TestPermutationInvariance:
    @given(graph_key_and_batch(), st.randoms(use_true_random=False))
    @CORRECTNESS
    def test_query_order_never_changes_distances(self, drawn, rng):
        graph_key, batch = drawn
        graph = GRAPH_POOL[graph_key]
        shuffled = list(batch)
        rng.shuffle(shuffled)
        permuted = QuerySet(shuffled)
        for kind in DECOMPOSERS:
            original = answer_batch(graph, kind, batch)
            reordered = answer_batch(graph, kind, permuted)
            assert original == reordered, (
                f"{kind}: answers depend on query order"
            )


class TestSplitMergeInvariance:
    @given(graph_key_and_batch(min_size=6), st.data())
    @CORRECTNESS
    def test_splitting_a_batch_never_changes_distances(self, drawn, data):
        graph_key, batch = drawn
        graph = GRAPH_POOL[graph_key]
        queries = list(batch)
        cut = data.draw(
            st.integers(min_value=1, max_value=len(queries) - 1), label="cut"
        )
        left, right = QuerySet(queries[:cut]), QuerySet(queries[cut:])
        for kind in DECOMPOSERS:
            merged = answer_batch(graph, kind, batch)
            split = sorted(
                answer_batch(graph, kind, left) + answer_batch(graph, kind, right)
            )
            assert merged == split, (
                f"{kind}: splitting the batch changed the answers"
            )


class TestOracleAndPathValidity:
    @given(graph_key_and_batch())
    @CORRECTNESS
    def test_every_answer_is_an_exact_valid_path(self, drawn):
        graph_key, batch = drawn
        graph = GRAPH_POOL[graph_key]
        oracle = {
            (q.source, q.target): dijkstra(graph, q.source, q.target).distance
            for q in batch.deduplicated()
        }
        for kind in DECOMPOSERS:
            decomposition = build_decomposer(kind, graph).decompose(batch)
            answerer = LocalCacheAnswerer(graph, cache_bytes=256 * 1024)
            answer = answerer.answer(decomposition, method=kind)
            assert len(answer.answers) == len(batch)
            for q, r in answer.answers:
                truth = oracle[(q.source, q.target)]
                assert math.isclose(r.distance, truth, rel_tol=1e-9), (
                    f"{kind}: {q} got {r.distance}, oracle {truth}"
                )
                if math.isfinite(r.distance) and q.source != q.target:
                    assert_valid_path(graph, r.path, q.source, q.target, r.distance)
