"""Shared machinery for the correctness fleet.

The metamorphic and differential suites run many randomized cases per
algorithm pair; to keep that affordable in tier-1 they draw small graphs
from a fixed pool and iterate every decomposer/algorithm inside one test
body, so 200 Hypothesis examples yield 200 cases *per pair*.

The explicit :data:`CORRECTNESS` settings object (rather than a
``settings.load_profile`` call) keeps this suite deterministic without
fighting the profile selection in ``tests/property/conftest.py`` — both
conftests would otherwise race to load a global profile.
"""

from __future__ import annotations

from typing import Dict, Tuple

from hypothesis import HealthCheck, settings, strategies as st

from repro.network.generators import beijing_like, grid_city, ring_radial_city
from repro.queries.workload import WorkloadGenerator

#: Deterministic, database-free settings applied per test: every run
#: replays the same 200 examples, so failures reproduce everywhere.
CORRECTNESS = settings(
    max_examples=200,
    deadline=None,
    database=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

#: Small-but-distinct road networks: jittered grids (the paper's dense
#: urban core), a ring-radial city, and the tiny Beijing-like composite.
GRAPH_POOL = {
    "grid4": grid_city(4, 4, seed=11),
    "grid5": grid_city(5, 5, seed=23),
    "ring": ring_radial_city(rings=3, spokes=6, seed=31),
    "tiny": beijing_like("tiny", seed=5),
}

_WORKLOADS: Dict[Tuple[str, int], WorkloadGenerator] = {}


def workload_for(graph_key: str, seed: int) -> WorkloadGenerator:
    """A cached workload generator per (graph, seed) pair."""
    key = (graph_key, seed)
    if key not in _WORKLOADS:
        _WORKLOADS[key] = WorkloadGenerator(GRAPH_POOL[graph_key], seed=seed)
    return _WORKLOADS[key]


@st.composite
def graph_key_and_batch(draw, min_size: int = 4, max_size: int = 24):
    """Draw a graph key plus a query batch generated on that graph."""
    graph_key = draw(st.sampled_from(sorted(GRAPH_POOL)))
    seed = draw(st.integers(min_value=0, max_value=50))
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    batch = workload_for(graph_key, seed).batch(size)
    return graph_key, batch


@st.composite
def graph_key_and_pair(draw):
    """Draw a graph key plus one (source, target) vertex pair."""
    graph_key = draw(st.sampled_from(sorted(GRAPH_POOL)))
    graph = GRAPH_POOL[graph_key]
    n = graph.num_vertices
    source = draw(st.integers(min_value=0, max_value=n - 1))
    target = draw(st.integers(min_value=0, max_value=n - 1))
    return graph_key, source, target
