"""Tests for the `repro verify` subcommand."""

from repro.cli import main


class TestVerify:
    def test_verify_passes_on_tiny(self, capsys):
        code = main(["verify", "--scale", "tiny", "--size", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "VERIFY OK" in out
        assert "0 mismatches" in out
        assert "0 bound violations" in out

    def test_verify_covers_both_bands(self, capsys):
        main(["verify", "--scale", "tiny", "--size", "30"])
        out = capsys.readouterr().out
        # Exact methods and bounded methods both appear.
        for method in ("astar", "gc", "slc-s", "zigzag-petal", "r2r-s", "r2r-r"):
            assert method in out

    def test_verify_with_looser_eta(self, capsys):
        code = main(["verify", "--scale", "tiny", "--size", "30", "--eta", "0.2"])
        assert code == 0
        assert "eta=0.2" in capsys.readouterr().out
