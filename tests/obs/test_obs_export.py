"""Export surfaces: JSON files, Prometheus text, summary tables."""

import json

from repro.obs import (
    MetricsRegistry,
    load_metrics_json,
    render_metrics_summary,
    snapshot_to_json,
    to_prometheus_text,
    write_metrics_json,
)


def sample_registry():
    reg = MetricsRegistry()
    reg.counter("search.heap_pops").add(12)
    reg.gauge("parallel.workers").set(2)
    h = reg.histogram("answer.seconds", bounds=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(2.0)
    with reg.span("answer"):
        pass
    return reg


class TestJson:
    def test_write_and_load_round_trip(self, tmp_path):
        snap = sample_registry().snapshot()
        path = tmp_path / "metrics.json"
        write_metrics_json(snap, path)
        data = load_metrics_json(path)
        assert data["counters"]["search.heap_pops"] == 12
        assert data["histograms"]["answer.seconds"]["count"] == 3
        assert data == json.loads(snapshot_to_json(snap))


class TestPrometheus:
    def test_exposition_format(self):
        text = to_prometheus_text(sample_registry().snapshot())
        assert "# TYPE repro_search_heap_pops_total counter" in text
        assert "repro_search_heap_pops_total 12" in text
        assert "# TYPE repro_parallel_workers gauge" in text
        assert "# TYPE repro_answer_seconds histogram" in text
        # buckets are cumulative: 1 (<=0.1), 2 (<=1.0), 3 (+Inf)
        assert 'repro_answer_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_answer_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_answer_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_answer_seconds_count 3" in text

    def test_empty_snapshot_is_empty_text(self):
        assert to_prometheus_text(MetricsRegistry().snapshot()) == ""

    def test_prefixless(self):
        text = to_prometheus_text(sample_registry().snapshot(), prefix="")
        assert "search_heap_pops_total 12" in text


class TestSummary:
    def test_render_summary_sections(self):
        text = render_metrics_summary(sample_registry().snapshot())
        assert "counters" in text
        assert "search.heap_pops" in text
        assert "histograms" in text
        assert "stages" in text and "answer" in text

    def test_empty_snapshot(self):
        assert "empty" in render_metrics_summary(MetricsRegistry().snapshot())
