"""The hot layers actually report through an installed registry."""

import pytest

from repro.analysis.metrics import hit_ratio
from repro.core.batch_runner import BatchProcessor
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.core.zigzag import ZigzagDecomposer
from repro.obs import MetricsRegistry, use_registry
from repro.search.astar import a_star
from repro.search.bidirectional import bidirectional_dijkstra
from repro.search.dijkstra import dijkstra, sssp_distances
from repro.search.generalized_astar import generalized_a_star


class TestSearchCounters:
    def test_dijkstra_reports_pops_and_relaxations(self, grid6):
        reg = MetricsRegistry()
        with use_registry(reg):
            result = dijkstra(grid6, 0, grid6.num_vertices - 1)
        snap = reg.snapshot()
        assert snap.counters["search.runs"] == 1
        assert snap.counters["search.heap_pops"] > 0
        assert snap.counters["search.relaxations"] >= snap.counters["search.heap_pops"] - 1
        assert snap.counters["search.settled"] == result.visited

    def test_counters_accumulate_across_runs(self, grid6):
        reg = MetricsRegistry()
        with use_registry(reg):
            dijkstra(grid6, 0, 5)
        once = reg.snapshot().counters["search.heap_pops"]
        with use_registry(reg):
            dijkstra(grid6, 0, 5)
        assert reg.snapshot().counters["search.heap_pops"] == 2 * once

    @pytest.mark.parametrize(
        "search", [a_star, bidirectional_dijkstra, generalized_a_star]
    )
    def test_other_searches_report(self, grid6, search):
        reg = MetricsRegistry()
        with use_registry(reg):
            if search is generalized_a_star:
                search(grid6, 0, [grid6.num_vertices - 1])
            else:
                search(grid6, 0, grid6.num_vertices - 1)
        snap = reg.snapshot()
        assert snap.counters["search.runs"] >= 1
        assert snap.counters["search.heap_pops"] > 0

    def test_sssp_reports(self, grid6):
        reg = MetricsRegistry()
        with use_registry(reg):
            sssp_distances(grid6, 0)
        assert reg.snapshot().counters["search.settled"] == grid6.num_vertices

    def test_null_registry_records_nothing(self, grid6):
        # No registry installed: dijkstra behaves identically, nothing kept.
        a = dijkstra(grid6, 0, grid6.num_vertices - 1)
        reg = MetricsRegistry()
        with use_registry(reg):
            b = dijkstra(grid6, 0, grid6.num_vertices - 1)
        assert a.distance == b.distance and a.path == b.path


class TestPipelineCounters:
    def test_slc_batch_populates_all_layers(self, ring, ring_batch):
        reg = MetricsRegistry()
        with use_registry(reg):
            answer = BatchProcessor(ring).process(ring_batch, "slc-s")
        snap = reg.snapshot()
        assert snap.counters["decompose.runs"] == 1
        assert snap.counters["cluster.queries"] == len(ring_batch)
        assert snap.counters["cache.hits"] == answer.cache_hits
        assert snap.counters["cache.misses"] == answer.cache_misses
        assert snap.counters["search.heap_pops"] > 0
        assert snap.histograms["cluster.size"]["count"] == snap.counters["cluster.count"]
        names = {s["name"] for s in snap.spans}
        assert {"decompose", "answer"} <= names

    def test_cluster_singletons_match_batch_answer(self, ring, ring_batch):
        reg = MetricsRegistry()
        decomposer = SearchSpaceDecomposer(ring)
        answerer = LocalCacheAnswerer(ring)
        with use_registry(reg):
            decomposition = decomposer.decompose(ring_batch)
            answer = answerer.answer(decomposition)
        snap = reg.snapshot()
        assert snap.counters["cluster.singletons"] == answer.singleton_queries

    def test_decomposers_record_cluster_histogram(self, ring, ring_batch):
        reg = MetricsRegistry()
        with use_registry(reg):
            decomposition = ZigzagDecomposer(ring).decompose(ring_batch)
        snap = reg.snapshot()
        assert snap.counters["cluster.count"] == len(decomposition.clusters)
        assert snap.histograms["cluster.size"]["count"] == len(decomposition.clusters)


class TestHitRatioRegression:
    """R_h (Section VI) excludes singleton queries from the denominator."""

    def test_excludes_singletons(self):
        from repro.core.results import BatchAnswer

        batch = BatchAnswer(
            method="test", cache_hits=6, cache_misses=6, singleton_queries=2
        )
        # raw ratio counts every lookup; R_h removes the 2 guaranteed misses
        assert batch.hit_ratio == pytest.approx(0.5)
        assert hit_ratio(batch) == pytest.approx(6 / 10)
        assert hit_ratio(batch, exclude_singletons=False) == pytest.approx(0.5)

    def test_all_singletons_is_zero_not_nan(self):
        from repro.core.results import BatchAnswer

        batch = BatchAnswer(
            method="test", cache_hits=0, cache_misses=3, singleton_queries=3
        )
        assert hit_ratio(batch) == 0.0

    def test_real_batch_rh_at_least_raw(self, ring, ring_batch):
        answer = BatchProcessor(ring).process(ring_batch, "slc-s")
        assert answer.singleton_queries > 0
        assert hit_ratio(answer) >= answer.hit_ratio
