"""Unit tests for the metrics registry, instruments and snapshot merging."""

import pickle

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    NULL_REGISTRY,
    NullRegistry,
    SIZE_BUCKETS,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_add_and_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.add()
        c.add(4)
        assert reg.counter("x") is c
        assert reg.snapshot().counters["x"] == 5

    def test_inc_alias(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        assert reg.snapshot().counters["x"] == 1


class TestGauge:
    def test_set_and_track_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(3.0)
        g.track_max(1.0)
        assert reg.snapshot().gauges["g"] == 3.0
        g.track_max(7.0)
        assert reg.snapshot().gauges["g"] == 7.0


class TestHistogram:
    def test_boundary_value_lands_in_its_bucket(self):
        """A value exactly on an upper edge belongs to that edge's bucket."""
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0, 2.0, 5.0))
        for v in (1.0, 2.0, 5.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 0]

    def test_between_and_overflow_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0, 2.0))
        h.observe(0.5)  # <= 1.0
        h.observe(1.5)  # <= 2.0
        h.observe(99.0)  # +inf
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(101.0)

    def test_zero_is_first_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0,))
        h.observe(0.0)
        assert h.counts == [1, 0]

    def test_negative_observation_rejected(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=(1.0,))
        with pytest.raises(ObservabilityError):
            h.observe(-0.001)
        assert h.count == 0

    def test_bounds_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.histogram("bad", bounds=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            reg.histogram("bad2", bounds=())

    def test_reregister_with_other_bounds_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ObservabilityError):
            reg.histogram("h", bounds=(1.0, 3.0))


class TestNameCollisions:
    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")
        with pytest.raises(ObservabilityError):
            reg.histogram("x")


class TestSnapshotMerge:
    def test_disjoint_label_sets_union(self):
        """Merging registries that saw different metrics keeps both sets."""
        a = MetricsRegistry()
        a.counter("only.a").add(2)
        a.histogram("h.a", bounds=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.counter("only.b").add(3)
        b.gauge("g.b").set(4.0)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counters == {"only.a": 2, "only.b": 3}
        assert merged.gauges == {"g.b": 4.0}
        assert merged.histograms["h.a"]["counts"] == [1, 0]

    def test_counters_sum_gauges_max_histograms_bucketwise(self):
        a = MetricsRegistry()
        a.counter("c").add(2)
        a.gauge("g").set(5.0)
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.counter("c").add(3)
        b.gauge("g").set(4.0)
        b.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counters["c"] == 5
        assert merged.gauges["g"] == 5.0
        assert merged.histograms["h"]["counts"] == [1, 1, 0]
        assert merged.histograms["h"]["count"] == 2

    def test_mismatched_bounds_refuse_to_merge(self):
        a = MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", bounds=(1.0, 3.0)).observe(0.5)
        with pytest.raises(ObservabilityError):
            a.snapshot().merge(b.snapshot())

    def test_snapshot_pickles(self):
        reg = MetricsRegistry()
        reg.counter("c").add(1)
        reg.histogram("h", SIZE_BUCKETS).observe(3)
        with reg.span("stage"):
            pass
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        assert snap.counters["c"] == 1
        assert snap.spans[0]["name"] == "stage"

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").add(7)
        reg.gauge("g").set(2.0)
        reg.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        again = MetricsSnapshot.from_dict(snap.to_dict())
        assert again.to_dict() == snap.to_dict()

    def test_merge_snapshot_into_live_registry(self):
        worker = MetricsRegistry()
        worker.counter("c").add(4)
        worker.histogram("h", bounds=(1.0,)).observe(0.2)
        parent = MetricsRegistry()
        parent.counter("c").add(1)
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap.counters["c"] == 5
        assert snap.histograms["h"]["counts"] == [1, 0]


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        null = NullRegistry()
        assert not null.enabled
        null.counter("c").add(5)
        null.gauge("g").set(1.0)
        null.histogram("h").observe(-1.0)  # not even validated
        with null.span("s") as s:
            s.set(k=1)
        snap = null.snapshot()
        assert snap.counters == {} and snap.spans == []

    def test_shared_instruments(self):
        null = NullRegistry()
        assert null.counter("a") is null.counter("b")


class TestActiveRegistry:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_prior(self):
        reg = MetricsRegistry()
        with use_registry(reg):
            assert get_registry() is reg
            inner = MetricsRegistry()
            with use_registry(inner):
                assert get_registry() is inner
            assert get_registry() is reg
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_none_restores_null(self):
        reg = MetricsRegistry()
        set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY
