"""CLI surfacing: --metrics-out / --spans-out and `repro obs summary`."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs")
    metrics = out / "metrics.json"
    spans = out / "spans.jsonl"
    code = main(
        [
            "run",
            "--scale", "tiny",
            "--method", "slc-s",
            "--size", "40",
            "--metrics-out", str(metrics),
            "--spans-out", str(spans),
        ]
    )
    assert code == 0
    return metrics, spans


class TestRunArtefacts:
    def test_metrics_json_has_hot_counters(self, artefacts):
        metrics, _ = artefacts
        data = json.loads(metrics.read_text())
        assert data["counters"]["search.heap_pops"] > 0
        assert data["counters"]["cache.hits"] > 0
        assert data["counters"]["decompose.runs"] == 1

    def test_spans_jsonl_lines_parse(self, artefacts):
        _, spans = artefacts
        records = [json.loads(line) for line in spans.read_text().splitlines()]
        assert records
        names = {r["name"] for r in records}
        assert {"decompose", "answer"} <= names
        assert all("duration_seconds" in r for r in records)

    def test_parallel_run_merges_worker_metrics(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "run",
                "--scale", "tiny",
                "--method", "slc-s",
                "--size", "40",
                "--workers", "2",
                "--metrics-out", str(metrics),
            ]
        )
        assert code == 0
        data = json.loads(metrics.read_text())
        assert data["counters"]["search.heap_pops"] > 0
        assert data["counters"]["parallel.units"] > 0


class TestObsSummary:
    def test_summary_of_metrics_json(self, artefacts, capsys):
        metrics, _ = artefacts
        assert main(["obs", "summary", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "search.heap_pops" in out
        assert "stages" in out

    def test_summary_of_span_jsonl(self, artefacts, capsys):
        _, spans = artefacts
        assert main(["obs", "summary", str(spans)]) == 0
        out = capsys.readouterr().out
        assert "decompose" in out
        assert "mean(s)" in out

    def test_summary_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "summary", str(tmp_path / "nope.json")])
