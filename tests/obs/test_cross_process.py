"""Cross-process metrics aggregation through the parallel engine.

The acceptance bar: with ``workers=2`` the merged snapshot's
``search.heap_pops`` equals the sum over the worker registries, and a
serial run of the same workload reports identical counter totals.
"""

import pytest

from repro.core.search_space import SearchSpaceDecomposer
from repro.obs import MetricsRegistry, use_registry
from repro.parallel import ParallelBatchEngine
from repro.queries.workload import WorkloadGenerator
from repro.service import BatchQueryService


@pytest.fixture(scope="module")
def decomposition(ring, ring_batch):
    return SearchSpaceDecomposer(ring).decompose(ring_batch)


def run_engine(ring, decomposition, workers):
    reg = MetricsRegistry()
    with use_registry(reg):
        with ParallelBatchEngine(ring, workers=workers) as engine:
            outcome = engine.execute(decomposition)
    return outcome, reg.snapshot()


WORK_COUNTERS = (
    "search.runs",
    "search.settled",
    "search.relaxations",
    "search.heap_pops",
    "cache.hits",
    "cache.misses",
    "cache.evictions",
    "cache.bytes_built",
)


class TestFleetTotals:
    def test_parallel_equals_serial_counters(self, ring, decomposition):
        _, serial = run_engine(ring, decomposition, workers=1)
        _, fleet = run_engine(ring, decomposition, workers=2)
        for name in WORK_COUNTERS:
            assert fleet.counters.get(name, 0) == serial.counters.get(name, 0), name
        assert fleet.counters["search.heap_pops"] > 0

    def test_heap_pops_is_sum_over_units(self, ring, decomposition):
        outcome, fleet = run_engine(ring, decomposition, workers=2)
        report = outcome.report
        assert report.metrics is not None
        # the report snapshot is exactly the per-unit fold plus engine stats
        assert (
            report.metrics.counters["search.heap_pops"]
            == fleet.counters["search.heap_pops"]
        )
        assert report.metrics.counters["parallel.units"] == len(report.units)

    def test_worker_spans_tagged_with_pid(self, ring, decomposition):
        _, fleet = run_engine(ring, decomposition, workers=2)
        answer_spans = [s for s in fleet.spans if s["name"] == "answer"]
        assert answer_spans, "worker answer spans should merge into the parent"
        assert all("pid" in s["attrs"] and "unit" in s["attrs"] for s in answer_spans)
        pids = {s["attrs"]["pid"] for s in answer_spans}
        assert len(pids) >= 1

    def test_engine_spans_present(self, ring, decomposition):
        _, fleet = run_engine(ring, decomposition, workers=2)
        names = [s["name"] for s in fleet.spans]
        assert "dispatch" in names and "merge" in names

    def test_histograms_cover_every_unit(self, ring, decomposition):
        outcome, fleet = run_engine(ring, decomposition, workers=2)
        n = len(outcome.report.units)
        assert fleet.histograms["parallel.unit_seconds"]["count"] == n
        assert fleet.histograms["parallel.queue_wait_seconds"]["count"] == n

    def test_no_registry_means_no_snapshot(self, ring, decomposition):
        with ParallelBatchEngine(ring, workers=2) as engine:
            outcome = engine.execute(decomposition)
        assert outcome.report.metrics is None
        assert outcome.report.schedule_result().metrics is None


class TestScheduleResultSurface:
    def test_fallbacks_and_metrics_on_schedule_result(self, ring, decomposition):
        outcome, _ = run_engine(ring, decomposition, workers=2)
        schedule = outcome.report.schedule_result()
        assert schedule.source == "measured"
        assert schedule.fallback_units == outcome.report.fallbacks == 0
        assert schedule.metrics is outcome.report.metrics
        assert schedule.metrics.counters["parallel.fallbacks"] == 0

    def test_simulated_schedule_defaults(self):
        from repro.analysis.parallel import lpt_makespan

        schedule = lpt_makespan([1.0, 2.0], 2)
        assert schedule.fallback_units == 0
        assert schedule.metrics is None


class TestFallbackCounting:
    def test_fallback_units_counted(self, ring, decomposition, monkeypatch):
        """Break the pool path so every unit falls back in-process."""
        from repro.parallel import engine as engine_mod

        reg = MetricsRegistry()
        engine = ParallelBatchEngine(ring, workers=2)

        class FailingFuture:
            def result(self, timeout=None):
                raise RuntimeError("synthetic worker failure")

            def cancelled(self):
                return False

            def done(self):
                return True

        class FailingPool:
            def submit(self, fn, payload):
                return FailingFuture()

        monkeypatch.setattr(engine, "_ensure_pool", lambda workers: FailingPool())
        with use_registry(reg):
            outcome = engine.execute(decomposition)
        engine.close()
        n_units = len(outcome.report.units)
        assert outcome.report.fallbacks == n_units > 0
        schedule = outcome.report.schedule_result()
        assert schedule.fallback_units == n_units
        snap = reg.snapshot()
        assert snap.counters["parallel.fallbacks"] == n_units
        # fallback units still contribute their work counters
        assert snap.counters["search.heap_pops"] > 0
        # and every query still got answered
        assert len(outcome.answer.answers) == sum(
            len(c) for c in decomposition.clusters
        )


class TestServiceSerialVsParallel:
    """workers=0 (serial engine path) must match workers=2 counter totals."""

    @staticmethod
    def run_service(ring, arrivals, workers):
        reg = MetricsRegistry()
        with use_registry(reg):
            with BatchQueryService(
                ring, window_seconds=1.0, workers=workers
            ) as service:
                report = service.run(list(arrivals))
        return report, reg.snapshot()

    @pytest.fixture(scope="class")
    def arrivals(self, ring):
        from repro.queries.arrivals import PoissonArrivals

        return PoissonArrivals(
            WorkloadGenerator(ring, seed=23), rate=30.0, seed=23
        ).duration(2.0)

    def test_serial_and_parallel_totals_match(self, ring, arrivals):
        report0, serial = self.run_service(ring, arrivals, workers=0)
        report2, fleet = self.run_service(ring, arrivals, workers=2)
        assert report0.total_queries == report2.total_queries > 0
        for name in WORK_COUNTERS:
            assert fleet.counters.get(name, 0) == serial.counters.get(name, 0), name
        assert serial.counters["search.heap_pops"] > 0

    def test_service_report_carries_metrics(self, ring, arrivals):
        report, snap = self.run_service(ring, arrivals, workers=0)
        assert report.metrics is not None
        assert (
            report.metrics.counters["service.windows"]
            == snap.counters["service.windows"]
            == report.busy_windows
        )
        assert report.metrics.histograms["service.window_seconds"]["count"] == (
            report.busy_windows
        )
        window_spans = [s for s in report.metrics.spans if s["name"] == "window"]
        assert len(window_spans) == report.busy_windows

    def test_workers_zero_rejected_only_below_zero(self, ring):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            BatchQueryService(ring, workers=-1)
