"""Span tracer: nesting, attributes, JSONL round-trip, summaries."""

from repro.obs import MetricsRegistry, SpanTracer, read_jsonl, summarize_spans
from repro.obs.export import render_stage_table


class TestSpanTracer:
    def test_records_appear_at_exit(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            assert tracer.records == []
        assert [r.name for r in tracer.records] == ["outer"]
        assert tracer.records[0].duration_seconds >= 0.0

    def test_nesting_parent_ids(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["inner2"].parent_id == by_name["outer"].span_id
        # children close before the parent, so they are recorded first
        assert [r.name for r in tracer.records] == ["inner", "inner2", "outer"]

    def test_attrs_via_kwargs_and_set(self):
        tracer = SpanTracer()
        with tracer.span("s", method="zigzag") as span:
            span.set(queries=42)
        rec = tracer.records[0]
        assert rec.attrs == {"method": "zigzag", "queries": 42}

    def test_exception_still_closes_span(self):
        tracer = SpanTracer()
        try:
            with tracer.span("failing"):
                raise ValueError("x")
        except ValueError:
            pass
        assert tracer.records[0].name == "failing"
        assert not tracer._stack

    def test_jsonl_round_trip(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("a", k=1):
            with tracer.span("b"):
                pass
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(path)
        spans = read_jsonl(path)
        assert [s["name"] for s in spans] == ["b", "a"]
        assert spans[1]["attrs"] == {"k": 1}
        assert spans[0]["parent_id"] == spans[1]["span_id"]

    def test_clear_resets_ids(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        with tracer.span("b"):
            pass
        assert tracer.records[0].span_id == 1


class TestSummaries:
    def test_summarize_spans(self):
        spans = [
            {"name": "answer", "duration_seconds": 0.25},
            {"name": "answer", "duration_seconds": 0.75},
            {"name": "decompose", "duration_seconds": 0.1},
        ]
        stages = summarize_spans(spans)
        assert stages["answer"]["count"] == 2
        assert stages["answer"]["total_seconds"] == 1.0
        assert stages["answer"]["mean_seconds"] == 0.5
        assert stages["answer"]["max_seconds"] == 0.75
        assert stages["decompose"]["count"] == 1

    def test_stage_table_renders(self):
        table = render_stage_table(
            [{"name": "answer", "duration_seconds": 0.5}]
        )
        assert "answer" in table and "count" in table

    def test_stage_table_empty(self):
        assert "no spans" in render_stage_table([])

    def test_registry_span_snapshot(self):
        reg = MetricsRegistry()
        with reg.span("stage", pid=7):
            pass
        spans = reg.snapshot().spans
        assert spans[0]["name"] == "stage"
        assert spans[0]["attrs"]["pid"] == 7
