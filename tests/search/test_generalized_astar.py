"""Unit tests for the generalized 1-N A* of [33]."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.search.dijkstra import dijkstra
from repro.search.generalized_astar import generalized_a_star, pick_representative
from tests.conftest import assert_valid_path


class TestExactness:
    @pytest.mark.parametrize("mode", ["representative", "min-target", "zero"])
    def test_matches_per_target_dijkstra(self, ring, mode):
        source = 0
        targets = [10, 55, 99, 130, 144]
        results, visited = generalized_a_star(ring, source, targets, mode=mode)
        assert visited > 0
        for t in targets:
            truth = dijkstra(ring, source, t).distance
            assert math.isclose(results[t].distance, truth, rel_tol=1e-12), (mode, t)

    def test_paths_are_valid(self, ring):
        results, _ = generalized_a_star(ring, 3, [40, 90])
        for t, r in results.items():
            assert_valid_path(ring, r.path, 3, t, r.distance)

    def test_source_in_targets(self, ring):
        results, _ = generalized_a_star(ring, 7, [7, 20])
        assert results[7].distance == 0.0
        assert results[7].path == [7]

    def test_duplicate_targets_collapsed(self, ring):
        results, _ = generalized_a_star(ring, 0, [5, 5, 5])
        assert len(results) == 1

    def test_unreachable_target(self, line_graph):
        results, _ = generalized_a_star(line_graph, 2, [0, 4])
        assert not results[0].found
        assert results[4].found

    def test_empty_targets(self, ring):
        results, visited = generalized_a_star(ring, 0, [])
        assert results == {}
        assert visited == 0

    def test_unknown_mode_rejected(self, ring):
        with pytest.raises(ConfigurationError):
            generalized_a_star(ring, 0, [1], mode="warp")


class TestSharedComputation:
    def test_single_run_cheaper_than_separate(self, ring):
        """The whole point: one 1-N run beats N separate A* runs on VNN."""
        source = 0
        # A tight target cloud in one direction.
        anchor = 100
        targets = sorted(
            range(ring.num_vertices), key=lambda v: ring.euclidean(anchor, v)
        )[:8]
        _, shared_visited = generalized_a_star(ring, source, targets)
        separate_visited = sum(dijkstra(ring, source, t).visited for t in targets)
        assert shared_visited < separate_visited

    def test_representative_is_farthest(self, ring):
        targets = [10, 50, 100]
        rep = pick_representative(ring, 0, targets)
        dists = {t: ring.euclidean(0, t) for t in targets}
        assert dists[rep] == max(dists.values())

    def test_representative_requires_targets(self, ring):
        with pytest.raises(ConfigurationError):
            pick_representative(ring, 0, [])

    def test_visited_attributed_once(self, ring):
        results, visited = generalized_a_star(ring, 0, [30, 60, 90])
        assert sum(r.visited for r in results.values()) == visited
