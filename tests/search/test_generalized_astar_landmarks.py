"""Landmark-assisted generalized A* (the paper's alternative heuristic)."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.search.dijkstra import dijkstra
from repro.search.generalized_astar import generalized_a_star
from repro.search.landmarks import LandmarkIndex


@pytest.fixture(scope="module")
def landmarks(ring):
    return LandmarkIndex(ring, num_landmarks=4, seed=1)


class TestLandmarkModes:
    @pytest.mark.parametrize("mode", ["representative", "min-target"])
    def test_exact_with_landmarks(self, ring, landmarks, mode):
        targets = [10, 50, 99, 130]
        results, visited = generalized_a_star(
            ring, 0, targets, mode=mode, landmarks=landmarks
        )
        assert visited > 0
        for t in targets:
            truth = dijkstra(ring, 0, t).distance
            assert math.isclose(results[t].distance, truth, rel_tol=1e-12)

    def test_min_target_landmarks_tighter(self, ring, landmarks):
        """ALT bounds dominate scaled Euclidean, so the search shrinks."""
        targets = [100, 101, 102]
        _, with_lm = generalized_a_star(
            ring, 0, targets, mode="min-target", landmarks=landmarks
        )
        _, without = generalized_a_star(ring, 0, targets, mode="min-target")
        assert with_lm <= without

    def test_stale_landmarks_rejected(self, ring):
        g = ring.copy()
        lm = LandmarkIndex(g, num_landmarks=2, seed=0)
        u, v, w = next(iter(g.edges()))
        g.set_weight(u, v, w * 2)
        with pytest.raises(ConfigurationError):
            generalized_a_star(g, 0, [5], landmarks=lm)

    def test_unreachable_target_with_landmarks(self, line_graph):
        lm = LandmarkIndex(line_graph, num_landmarks=2, seed=0)
        results, _ = generalized_a_star(
            line_graph, 2, [0, 4], mode="representative", landmarks=lm
        )
        assert not results[0].found
        assert results[4].found
