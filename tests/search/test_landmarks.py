"""Unit tests for ALT landmarks."""

import math

import pytest

from repro.exceptions import IndexConstructionError
from repro.network.graph import RoadNetwork
from repro.search.astar import a_star
from repro.search.dijkstra import dijkstra
from repro.search.landmarks import LandmarkIndex


@pytest.fixture(scope="module")
def landmarks(ring):
    return LandmarkIndex(ring, num_landmarks=4, seed=2)


class TestBounds:
    def test_lower_bound_is_admissible(self, ring, landmarks):
        for s, t in [(0, 70), (12, 140), (99, 3), (50, 50)]:
            truth = dijkstra(ring, s, t).distance
            assert landmarks.lower_bound(s, t) <= truth + 1e-9

    def test_bound_to_self_is_zero(self, ring, landmarks):
        for v in (0, 10, 100):
            assert landmarks.lower_bound(v, v) == pytest.approx(0.0, abs=1e-12)

    def test_bound_nonnegative(self, ring, landmarks):
        for s, t in [(5, 80), (80, 5)]:
            assert landmarks.lower_bound(s, t) >= 0.0

    def test_tighter_than_euclidean_somewhere(self, ring, landmarks):
        """ALT should beat the Euclidean bound for at least some pair."""
        wins = 0
        for s in range(0, ring.num_vertices, 11):
            for t in range(3, ring.num_vertices, 13):
                if landmarks.lower_bound(s, t) > ring.heuristic(s, t) + 1e-9:
                    wins += 1
        assert wins > 0


class TestAStarIntegration:
    def test_astar_with_alt_is_exact(self, ring, landmarks):
        for s, t in [(0, 70), (12, 140), (99, 3)]:
            truth = dijkstra(ring, s, t).distance
            r = a_star(ring, s, t, heuristic=landmarks.heuristic_to(t))
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_alt_visits_no_more_than_dijkstra(self, ring, landmarks):
        total_alt = total_dij = 0
        for s, t in [(0, 70), (12, 140), (99, 3)]:
            total_alt += a_star(ring, s, t, heuristic=landmarks.heuristic_to(t)).visited
            total_dij += dijkstra(ring, s, t).visited
        assert total_alt <= total_dij


class TestLifecycle:
    def test_selection_spread(self, ring, landmarks):
        assert len(set(landmarks.landmarks)) == 4

    def test_stale_flag(self, ring):
        g = ring.copy()
        lm = LandmarkIndex(g, num_landmarks=2, seed=0)
        assert not lm.stale
        g.set_weight(*[(u, v) for u, v, _ in g.edges()][0], 99.0)
        assert lm.stale

    def test_zero_landmarks_rejected(self, ring):
        with pytest.raises(IndexConstructionError):
            LandmarkIndex(ring, num_landmarks=0)

    def test_empty_graph_rejected(self):
        with pytest.raises(IndexConstructionError):
            LandmarkIndex(RoadNetwork([], []), num_landmarks=1)
