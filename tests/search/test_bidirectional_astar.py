"""Unit tests for bidirectional A* (average-potential construction)."""

import math

import pytest

from repro.search.bidirectional_astar import bidirectional_a_star
from repro.search.dijkstra import dijkstra
from tests.conftest import assert_valid_path


class TestBidirectionalAStar:
    @pytest.mark.parametrize("s,t", [(0, 70), (12, 140), (99, 3), (1, 144), (50, 51)])
    def test_matches_dijkstra(self, ring, s, t):
        assert math.isclose(
            bidirectional_a_star(ring, s, t).distance,
            dijkstra(ring, s, t).distance,
            rel_tol=1e-12,
        )

    def test_path_is_valid(self, ring):
        r = bidirectional_a_star(ring, 2, 88)
        assert_valid_path(ring, r.path, 2, 88, r.distance)

    def test_same_vertex(self, ring):
        r = bidirectional_a_star(ring, 5, 5)
        assert r.distance == 0.0 and r.path == [5]

    def test_unreachable(self, line_graph):
        r = bidirectional_a_star(line_graph, 4, 0)
        assert not r.found

    def test_directed_path(self, line_graph):
        r = bidirectional_a_star(line_graph, 0, 4)
        assert r.path == [0, 1, 2, 3, 4]

    def test_grid_all_pairs_sample(self, grid6):
        for s in range(0, 36, 5):
            for t in range(1, 36, 7):
                truth = dijkstra(grid6, s, t).distance
                assert math.isclose(
                    bidirectional_a_star(grid6, s, t).distance, truth, rel_tol=1e-12
                ), (s, t)

    def test_visits_no_more_than_bidirectional_dijkstra(self, ring):
        from repro.search.bidirectional import bidirectional_dijkstra

        total_a = total_d = 0
        for s, t in [(0, 70), (12, 140), (99, 3), (30, 110)]:
            total_a += bidirectional_a_star(ring, s, t).visited
            total_d += bidirectional_dijkstra(ring, s, t).visited
        assert total_a <= total_d * 1.05

    def test_scaled_weights_stay_exact(self, ring):
        g = ring.copy()
        g.scale_weights(0.5)
        for s, t in [(0, 70), (33, 101)]:
            assert math.isclose(
                bidirectional_a_star(g, s, t).distance,
                dijkstra(g, s, t).distance,
                rel_tol=1e-12,
            )
