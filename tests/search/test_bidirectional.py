"""Unit tests for bidirectional Dijkstra."""

import math

import pytest

from repro.search.bidirectional import bidirectional_dijkstra
from repro.search.dijkstra import dijkstra
from tests.conftest import assert_valid_path


class TestBidirectional:
    @pytest.mark.parametrize("s,t", [(0, 70), (12, 140), (99, 3), (1, 144)])
    def test_matches_dijkstra(self, ring, s, t):
        assert math.isclose(
            bidirectional_dijkstra(ring, s, t).distance,
            dijkstra(ring, s, t).distance,
            rel_tol=1e-12,
        )

    def test_path_is_valid(self, ring):
        r = bidirectional_dijkstra(ring, 2, 88)
        assert_valid_path(ring, r.path, 2, 88, r.distance)

    def test_same_vertex(self, ring):
        r = bidirectional_dijkstra(ring, 5, 5)
        assert r.distance == 0.0
        assert r.path == [5]

    def test_unreachable(self, line_graph):
        r = bidirectional_dijkstra(line_graph, 4, 0)
        assert not r.found
        assert r.path == []

    def test_directed_asymmetry_respected(self, line_graph):
        fwd = bidirectional_dijkstra(line_graph, 0, 4)
        assert fwd.found
        assert fwd.path == [0, 1, 2, 3, 4]

    def test_usually_visits_fewer_than_unidirectional(self, ring):
        total_bi = total_uni = 0
        for s, t in [(0, 70), (12, 140), (99, 3), (50, 130)]:
            total_bi += bidirectional_dijkstra(ring, s, t).visited
            total_uni += dijkstra(ring, s, t).visited
        assert total_bi <= total_uni * 1.1  # allow slack on tiny graphs

    def test_grid_matches(self, grid6):
        for s in range(0, 36, 5):
            for t in range(0, 36, 7):
                assert math.isclose(
                    bidirectional_dijkstra(grid6, s, t).distance,
                    dijkstra(grid6, s, t).distance,
                    rel_tol=1e-12,
                )
