"""Unit tests for Dijkstra and its variants, cross-checked with networkx."""

import math

import networkx as nx
import pytest

from repro.search.dijkstra import (
    bounded_ball,
    bounded_ball_tree,
    dijkstra,
    one_to_many,
    sssp_distances,
    sssp_tree,
)
from tests.conftest import assert_valid_path


def to_networkx(graph):
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    for u, v, w in graph.edges():
        g.add_edge(u, v, weight=w)
    return g


@pytest.fixture(scope="module")
def nx_ring(ring):
    return to_networkx(ring)


class TestPointToPoint:
    def test_matches_networkx(self, ring, nx_ring):
        pairs = [(0, 50), (3, 120), (77, 8), (144, 1), (60, 60)]
        for s, t in pairs:
            ours = dijkstra(ring, s, t).distance
            theirs = nx.dijkstra_path_length(nx_ring, s, t)
            assert math.isclose(ours, theirs, rel_tol=1e-12)

    def test_path_is_valid(self, ring):
        r = dijkstra(ring, 5, 99)
        assert_valid_path(ring, r.path, 5, 99, r.distance)

    def test_same_vertex(self, ring):
        r = dijkstra(ring, 7, 7)
        assert r.distance == 0.0
        assert r.path == [7]

    def test_unreachable(self, line_graph):
        r = dijkstra(line_graph, 4, 0)  # edges only go forward
        assert not r.found
        assert r.path == []

    def test_visited_counted(self, ring):
        r = dijkstra(ring, 0, 100)
        assert r.visited > 0

    def test_backward_equals_forward_reversed(self, ring):
        fwd = dijkstra(ring, 10, 90)
        bwd = dijkstra(ring, 90, 10, backward=True)
        assert math.isclose(fwd.distance, bwd.distance)
        assert bwd.path == list(reversed(fwd.path)) or math.isclose(
            fwd.distance, bwd.distance
        )

    def test_require_found_raises(self, line_graph):
        from repro.exceptions import NoPathError

        with pytest.raises(NoPathError):
            dijkstra(line_graph, 4, 0).require_found()


class TestBoundedBall:
    def test_all_within_radius(self, ring):
        ball, visited = bounded_ball(ring, 0, 10.0)
        assert visited == len(ball)
        for v, d in ball.items():
            assert d <= 10.0
            assert math.isclose(d, dijkstra(ring, 0, v).distance)

    def test_radius_zero_only_source(self, ring):
        ball, _ = bounded_ball(ring, 5, 0.0)
        assert ball == {5: 0.0}

    def test_ball_grows_with_radius(self, ring):
        small, _ = bounded_ball(ring, 0, 5.0)
        large, _ = bounded_ball(ring, 0, 15.0)
        assert set(small) <= set(large)
        assert len(large) > len(small)

    def test_backward_ball(self, line_graph):
        ball, _ = bounded_ball(line_graph, 4, 100.0, backward=True)
        assert set(ball) == {0, 1, 2, 3, 4}
        ball_fwd, _ = bounded_ball(line_graph, 4, 100.0)
        assert set(ball_fwd) == {4}

    def test_tree_variant_paths(self, ring):
        ball, parents, _ = bounded_ball_tree(ring, 0, 12.0)
        for v in list(ball)[:10]:
            if v == 0:
                continue
            # Walk parents back to the source.
            cur, hops = v, 0
            while cur != 0 and hops < 1000:
                cur = parents[cur]
                hops += 1
            assert cur == 0


class TestOneToMany:
    def test_distances_match(self, ring):
        targets = [3, 50, 99, 140]
        found, parents, visited = one_to_many(ring, 0, targets)
        for t in targets:
            assert math.isclose(found[t], dijkstra(ring, 0, t).distance)
        assert visited > 0

    def test_unreachable_marked_inf(self, line_graph):
        found, _, _ = one_to_many(line_graph, 2, [0, 4])
        assert math.isinf(found[0])
        assert found[4] == pytest.approx(1.2 + 1.3)

    def test_stops_early(self, ring):
        # Asking for a close-by target should settle far fewer than n nodes.
        close = min(
            range(1, ring.num_vertices), key=lambda v: ring.euclidean(0, v)
        )
        _, _, visited = one_to_many(ring, 0, [close])
        assert visited < ring.num_vertices / 2

    def test_empty_targets(self, ring):
        found, parents, visited = one_to_many(ring, 0, [])
        assert found == {}
        assert visited == 0


class TestSSSP:
    def test_matches_networkx(self, ring, nx_ring):
        ours = sssp_distances(ring, 0)
        theirs = nx.single_source_dijkstra_path_length(nx_ring, 0)
        for v in range(ring.num_vertices):
            assert math.isclose(ours[v], theirs[v], rel_tol=1e-12)

    def test_backward_matches_reverse_graph(self, ring):
        ours = sssp_distances(ring, 0, backward=True)
        rev = ring.reversed_copy()
        expected = sssp_distances(rev, 0)
        assert ours == pytest.approx(expected)

    def test_tree_parents_reconstruct(self, ring):
        dist, parents = sssp_tree(ring, 0)
        for v in (10, 60, 130):
            cur, total = v, 0.0
            while cur != 0:
                p = parents[cur]
                total += ring.weight(p, cur)
                cur = p
            assert math.isclose(total, dist[v])
