"""Differential suite for the vectorized numpy kernels.

The dict-graph searches are the oracle throughout: on distinct distances
every numpy kernel must reproduce distances, paths, visited counts and
membership sets bit-identically; on exact float ties (zero-weight edges)
distances and membership stay bit-identical while tree/path tie-breaks
may differ but must remain valid shortest paths.

The module also covers the backend knob (``REPRO_KERNEL`` and the auto
crossovers), transparent dispatch from the public entry points, the
forced-no-numpy fallback, and cooperative deadline cancellation at
bucket boundaries.
"""

import math
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.network.generators import beijing_like, grid_city
from repro.network.graph import RoadNetwork
from repro.obs import MetricsRegistry, use_registry
from repro.resilience.deadline import Deadline, DeadlineExceededError, use_deadline
from repro.search import np_kernels
from repro.search.dijkstra import (
    batch_dijkstra,
    bounded_ball,
    bounded_ball_tree,
    dijkstra,
    np_batch_active,
    one_to_many,
    region_balls,
    sssp_distances,
    sssp_tree,
)

from tests.conftest import assert_valid_path

requires_numpy = pytest.mark.skipif(
    not np_kernels.np_available(), reason="numpy not installed"
)


def random_network(seed: int, n: int = 50, extra: int = 70, zero: bool = False):
    """A connected random network plus one isolated vertex (id ``n``).

    The isolated vertex keeps every unreachable code path covered;
    ``zero`` mixes zero-weight edges in for exact float ties.
    """
    rng = random.Random(seed)
    xs = [rng.random() for _ in range(n + 1)]
    ys = [rng.random() for _ in range(n + 1)]
    graph = RoadNetwork(xs, ys)
    seen = set()

    def add(u, v, w):
        if u != v and (u, v) not in seen:
            seen.add((u, v))
            graph.add_edge(u, v, w)

    for i in range(1, n):
        j = rng.randrange(i)
        w = rng.choice([0.0, 0.0, 1.0, 2.0, 3.0]) if zero else rng.random() * 3
        add(i, j, w)
        add(j, i, w)
    for _ in range(extra):
        u, v = rng.randrange(n), rng.randrange(n)
        w = rng.choice([0.0, 1.0, 2.0]) if zero else rng.random() * 3
        add(u, v, w)
    return graph


def case_seeds(zero_every: int = 3, count: int = 12):
    return [(seed, seed % zero_every == 0) for seed in range(count)]


@requires_numpy
class TestKernelDifferential:
    """Direct kernel calls vs the dict oracle (no dispatch involved)."""

    def test_point_to_point(self):
        for seed, zero in case_seeds():
            graph = random_network(seed, zero=zero)
            csr = graph.freeze()
            rng = random.Random(1000 + seed)
            n = graph.num_vertices
            pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(8)]
            pairs += [(3, 3), (0, n - 1)]  # degenerate + unreachable
            for backward in (False, True):
                for s, t in pairs:
                    ref = dijkstra(graph, s, t, backward)
                    got = np_kernels.np_dijkstra(csr, s, t, backward)
                    assert got.distance == ref.distance, (seed, s, t)
                    if zero:
                        if ref.path:
                            assert got.path[0] == s and got.path[-1] == t
                            # A backward-search path uses reverse edges;
                            # validate its forward-space reversal.
                            forward = (
                                got.path if not backward
                                else list(reversed(got.path))
                            )
                            a, b = (s, t) if not backward else (t, s)
                            assert_valid_path(graph, forward, a, b, got.distance)
                    else:
                        assert got.path == ref.path, (seed, s, t)
                        assert got.visited == ref.visited, (seed, s, t)

    def test_batch_matches_per_query(self):
        for seed, zero in case_seeds(count=8):
            graph = random_network(seed, zero=zero)
            csr = graph.freeze()
            rng = random.Random(2000 + seed)
            n = graph.num_vertices
            pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(9)]
            pairs.append((7, 7))
            for backward in (False, True):
                batch = np_kernels.np_batch_dijkstra(csr, pairs, backward)
                assert len(batch) == len(pairs)
                for (s, t), got in zip(pairs, batch):
                    ref = dijkstra(graph, s, t, backward)
                    assert got.source == s and got.target == t
                    assert got.distance == ref.distance, (seed, s, t)
                    if not zero:
                        assert got.path == ref.path, (seed, s, t)
                        assert got.visited == ref.visited, (seed, s, t)

    def test_sssp_distances_and_tree(self):
        for seed, zero in case_seeds(count=8):
            graph = random_network(seed, zero=zero)
            csr = graph.freeze()
            source = seed % graph.num_vertices
            for backward in (False, True):
                assert np_kernels.np_sssp_distances(
                    csr, source, backward
                ) == sssp_distances(graph, source, backward)
                got_d, got_p = np_kernels.np_sssp_tree(csr, source, backward)
                ref_d, ref_p = sssp_tree(graph, source, backward)
                assert got_d == ref_d
                if not zero:
                    assert got_p == ref_p
                else:
                    # Tie-broken parents must still form a distance-exact tree.
                    for v, u in got_p.items():
                        assert got_d[v] == got_d[u] + graph.weight(
                            *((u, v) if not backward else (v, u))
                        )

    def test_bounded_balls(self):
        for seed, zero in case_seeds(count=10):
            graph = random_network(seed, zero=zero)
            csr = graph.freeze()
            rng = random.Random(3000 + seed)
            source = rng.randrange(graph.num_vertices)
            radius = rng.random() * 4
            for backward in (False, True):
                assert np_kernels.np_bounded_ball(
                    csr, source, radius, backward
                ) == bounded_ball(graph, source, radius, backward)
                got = np_kernels.np_bounded_ball_tree(csr, source, radius, backward)
                ref = bounded_ball_tree(graph, source, radius, backward)
                assert got[0] == ref[0] and got[2] == ref[2]
                if not zero:
                    assert got[1] == ref[1]

    def test_multi_ball_matches_per_ball(self):
        for seed, zero in case_seeds(count=8):
            graph = random_network(seed, zero=zero)
            csr = graph.freeze()
            rng = random.Random(4000 + seed)
            u, v = rng.randrange(50), rng.randrange(50)
            radius = rng.random() * 4
            specs = [(u, False), (u, True), (v, False), (v, True)]
            got = np_kernels.np_multi_bounded_ball_tree(csr, specs, radius)
            assert len(got) == len(specs)
            for (src, backward), (done, parents, visited) in zip(specs, got):
                ref = bounded_ball_tree(graph, src, radius, backward)
                assert done == ref[0] and visited == ref[2]
                if not zero:
                    assert parents == ref[1]

    def test_one_to_many(self):
        for seed, zero in case_seeds(count=10):
            graph = random_network(seed, zero=zero)
            csr = graph.freeze()
            rng = random.Random(5000 + seed)
            n = graph.num_vertices
            source = rng.randrange(n - 1)
            targets = [rng.randrange(n) for _ in range(7)]
            if seed % 2:
                targets.append(n - 1)  # unreachable target drains the sweep
            for backward in (False, True):
                got = np_kernels.np_one_to_many(csr, source, targets, backward)
                ref = one_to_many(graph, source, targets, backward)
                assert got[0] == ref[0], (seed, backward)
                if not zero:
                    assert got[1] == ref[1] and got[2] == ref[2], (seed, backward)

    def test_one_to_many_empty_targets(self):
        graph = random_network(1)
        csr = graph.freeze()
        assert np_kernels.np_one_to_many(csr, 0, []) == ({}, {}, 0)


@requires_numpy
class TestBackendKnob:
    def test_invalid_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "cuda")
        with pytest.raises(ConfigurationError):
            np_kernels.kernel_backend()

    def test_invalid_threshold_rejected(self, monkeypatch):
        # Pin the backend to auto: an ambient REPRO_KERNEL=csr (the CI
        # forced-fallback pass) would otherwise short-circuit np_active
        # before the threshold knob is ever parsed.
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "auto")
        monkeypatch.setenv(np_kernels.AUTO_MIN_KNOB, "many")
        graph = random_network(2)
        csr = graph.freeze()
        with pytest.raises(ConfigurationError):
            np_kernels.np_active(csr)

    def test_csr_disables(self, monkeypatch):
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "csr")
        csr = random_network(2).freeze()
        assert not np_kernels.np_active(csr)
        assert not np_kernels.np_active(csr, "batch")

    def test_np_forces(self, monkeypatch):
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "np")
        csr = random_network(2).freeze()
        assert np_kernels.np_active(csr)
        assert np_kernels.np_active(csr, "batch")

    def test_auto_uses_size_crossovers(self, monkeypatch):
        csr = random_network(2).freeze()  # 51 vertices
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "auto")
        assert not np_kernels.np_active(csr)
        monkeypatch.setenv(np_kernels.AUTO_MIN_KNOB, "10")
        assert np_kernels.np_active(csr)
        assert not np_kernels.np_active(csr, "batch")
        monkeypatch.setenv(np_kernels.BATCH_MIN_KNOB, "10")
        assert np_kernels.np_active(csr, "batch")

    def test_warm_view_caches(self):
        csr = random_network(3).freeze()
        assert np_kernels.warm_view(csr)
        view = csr._npview
        assert view is not None
        assert np_kernels.warm_view(csr)
        assert csr._npview is view


@requires_numpy
class TestDispatch:
    """The public entry points route to the numpy kernels transparently."""

    def test_forced_np_dispatch_bit_identical(self, monkeypatch):
        graph = grid_city(6, 6, spacing=1.0, seed=3)
        frozen = graph.copy()
        frozen.freeze()
        rng = random.Random(17)
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "np")
        registry = MetricsRegistry()
        with use_registry(registry):
            for _ in range(25):
                s, t = rng.randrange(36), rng.randrange(36)
                got = dijkstra(frozen, s, t)
                monkeypatch.setenv(np_kernels.BACKEND_KNOB, "csr")
                ref = dijkstra(graph, s, t)
                monkeypatch.setenv(np_kernels.BACKEND_KNOB, "np")
                assert (got.distance, got.path, got.visited) == (
                    ref.distance, ref.path, ref.visited,
                )
        counters = registry.snapshot().counters
        assert counters["csr.np_sweeps"] > 0
        assert counters["csr.np_kind.dijkstra"] > 0

    def test_batch_dispatch_and_helper(self, monkeypatch):
        graph = grid_city(6, 6, spacing=1.0, seed=3)
        frozen = graph.copy()
        frozen.freeze()
        pairs = [(0, 35), (10, 20), (3, 3), (7, 31)]
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "np")
        assert np_batch_active(frozen, len(pairs))
        assert not np_batch_active(graph, len(pairs))  # never frozen
        got = batch_dijkstra(frozen, pairs)
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "csr")
        assert not np_batch_active(frozen, len(pairs))
        ref = batch_dijkstra(frozen, pairs)
        assert [(r.distance, r.path, r.visited) for r in got] == [
            (r.distance, r.path, r.visited) for r in ref
        ]

    def test_region_balls_dispatch(self, monkeypatch):
        graph = grid_city(6, 6, spacing=1.0, seed=3)
        frozen = graph.copy()
        frozen.freeze()
        specs = [(0, False), (0, True), (20, False), (20, True)]
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "np")
        got = region_balls(frozen, specs, 2.5)
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "csr")
        ref = region_balls(frozen, specs, 2.5)
        assert got == ref

    def test_auto_skips_small_graphs(self, monkeypatch):
        monkeypatch.delenv(np_kernels.BACKEND_KNOB, raising=False)
        frozen = grid_city(5, 5, seed=1)
        frozen.freeze()
        registry = MetricsRegistry()
        with use_registry(registry):
            dijkstra(frozen, 0, 24)
        assert "csr.np_sweeps" not in registry.snapshot().counters


class TestNoNumpyFallback:
    """With numpy gone, dispatch degrades to the scalar path transparently."""

    def test_answers_identical_without_numpy(self, monkeypatch):
        graph = grid_city(6, 6, spacing=1.0, seed=3)
        frozen = graph.copy()
        frozen.freeze()
        rng = random.Random(29)
        cases = [(rng.randrange(36), rng.randrange(36)) for _ in range(15)]
        with_np = [dijkstra(frozen, s, t) for s, t in cases]
        monkeypatch.setattr(np_kernels, "_numpy", None)
        assert not np_kernels.np_available()
        assert not np_kernels.np_active(frozen.frozen_or_none() or frozen.freeze())
        without_np = [dijkstra(frozen, s, t) for s, t in cases]
        assert [(r.distance, r.path, r.visited) for r in with_np] == [
            (r.distance, r.path, r.visited) for r in without_np
        ]

    def test_forcing_np_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(np_kernels, "_numpy", None)
        monkeypatch.setenv(np_kernels.BACKEND_KNOB, "np")
        csr = random_network(2).freeze()
        with pytest.raises(ConfigurationError, match="optional extra"):
            np_kernels.np_active(csr)

    def test_warm_view_is_noop_without_numpy(self, monkeypatch):
        monkeypatch.setattr(np_kernels, "_numpy", None)
        csr = random_network(4).freeze()
        assert not np_kernels.warm_view(csr)


@requires_numpy
class TestDeadline:
    def test_expired_deadline_cancels_sweep(self):
        graph = beijing_like("tiny", seed=0)
        csr = graph.freeze()
        deadline = Deadline(-1.0)  # already expired
        with use_deadline(deadline):
            with pytest.raises(DeadlineExceededError) as err:
                np_kernels.np_dijkstra(csr, 0, graph.num_vertices - 1)
        assert err.value.where == "dijkstra"

    def test_expired_deadline_cancels_batch(self):
        graph = beijing_like("tiny", seed=0)
        csr = graph.freeze()
        pairs = [(0, 40), (1, 50)]
        with use_deadline(Deadline(-1.0)):
            with pytest.raises(DeadlineExceededError):
                np_kernels.np_batch_dijkstra(csr, pairs)


@requires_numpy
class TestAccounting:
    def test_unreachable_heap_term_unified(self):
        """The satellite bugfix: unreachable returns record the drained
        heap form ``pushes + 1 - len(heap)`` on every backend, so dict,
        scalar-CSR and numpy totals merge identically across a fleet."""
        graph = random_network(6)  # vertex 50 is isolated
        frozen = graph.copy()
        frozen.freeze()

        def counters(g, monkey_env):
            registry = MetricsRegistry()
            with use_registry(registry):
                dijkstra(g, 0, graph.num_vertices - 1)
            return {
                k: v for k, v in registry.snapshot().counters.items()
                if k.startswith("search.")
            }

        assert counters(graph, None) == counters(frozen, None)

    def test_np_search_counters_emitted(self):
        csr = random_network(7).freeze()
        registry = MetricsRegistry()
        with use_registry(registry):
            np_kernels.np_batch_dijkstra(csr, [(0, 10), (2, 20), (4, 40)])
        counters = registry.snapshot().counters
        assert counters["csr.np_kind.batch-dijkstra"] == 1
        assert counters["csr.np_rows"] == 3
        assert counters["search.runs"] == 3
        assert counters["csr.np_buckets"] >= 1
