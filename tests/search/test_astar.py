"""Unit tests for A*: exactness and search-space reduction."""

import math

import pytest

from repro.search.astar import a_star
from repro.search.dijkstra import dijkstra
from tests.conftest import assert_valid_path


class TestExactness:
    @pytest.mark.parametrize("s,t", [(0, 70), (12, 140), (99, 3), (144, 0)])
    def test_matches_dijkstra(self, ring, s, t):
        assert math.isclose(
            a_star(ring, s, t).distance, dijkstra(ring, s, t).distance, rel_tol=1e-12
        )

    def test_path_is_valid(self, ring):
        r = a_star(ring, 4, 77)
        assert_valid_path(ring, r.path, 4, 77, r.distance)

    def test_same_vertex(self, ring):
        r = a_star(ring, 9, 9)
        assert r.distance == 0.0
        assert r.path == [9]

    def test_unreachable(self, line_graph):
        assert not a_star(line_graph, 3, 0).found

    def test_exact_on_travel_time_weights(self, ring):
        # Scale all weights (e.g. km -> minutes at 1 km/min is identity;
        # use 0.7 to make weights *smaller* than Euclidean distances).
        g = ring.copy()
        g.scale_weights(0.7)
        for s, t in [(0, 70), (33, 101)]:
            assert math.isclose(
                a_star(g, s, t).distance, dijkstra(g, s, t).distance, rel_tol=1e-12
            )


class TestEfficiency:
    def test_visits_no_more_than_dijkstra(self, ring):
        total_astar = total_dij = 0
        for s, t in [(0, 70), (12, 140), (99, 3)]:
            total_astar += a_star(ring, s, t).visited
            total_dij += dijkstra(ring, s, t).visited
        assert total_astar <= total_dij

    def test_custom_heuristic_zero_degrades_to_dijkstra(self, ring):
        r_zero = a_star(ring, 0, 100, heuristic=lambda u: 0.0)
        r_dij = dijkstra(ring, 0, 100)
        assert math.isclose(r_zero.distance, r_dij.distance)

    def test_custom_admissible_heuristic_stays_exact(self, ring):
        truth = dijkstra(ring, 0, 100).distance

        def h(u):
            return ring.heuristic(u, 100) * 0.5  # weaker but admissible

        assert math.isclose(a_star(ring, 0, 100, heuristic=h).distance, truth)
