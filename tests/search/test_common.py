"""Unit tests for search result helpers."""

import math

import pytest

from repro.exceptions import NoPathError
from repro.search.common import PathResult, SearchStats, path_length, reconstruct_path


class TestPathResult:
    def test_found_flag(self):
        assert PathResult(0, 1, 5.0).found
        assert not PathResult(0, 1, math.inf).found

    def test_require_found_passthrough(self):
        r = PathResult(0, 1, 5.0)
        assert r.require_found() is r

    def test_require_found_raises(self):
        with pytest.raises(NoPathError):
            PathResult(0, 1, math.inf).require_found()

    def test_defaults(self):
        r = PathResult(0, 1, 5.0)
        assert r.path == []
        assert r.visited == 0
        assert r.exact


class TestReconstructPath:
    def test_simple_chain(self):
        parents = {1: 0, 2: 1, 3: 2}
        assert reconstruct_path(parents, 0, 3) == [0, 1, 2, 3]

    def test_source_equals_target(self):
        assert reconstruct_path({}, 5, 5) == [5]

    def test_unreached_target(self):
        assert reconstruct_path({1: 0}, 0, 9) == []


class TestPathLength:
    def test_length(self, line_graph):
        assert path_length(line_graph, [0, 1, 2]) == pytest.approx(1.0 + 1.1)

    def test_trivial_paths(self, line_graph):
        assert path_length(line_graph, []) == 0.0
        assert path_length(line_graph, [3]) == 0.0


class TestSearchStats:
    def test_record(self):
        stats = SearchStats()
        stats.record(PathResult(0, 1, 5.0, visited=10))
        stats.record(PathResult(1, 2, 3.0, visited=4))
        assert stats.searches == 2
        assert stats.visited == 14
        assert stats.mean_visited == 7.0

    def test_record_returns_result(self):
        stats = SearchStats()
        r = PathResult(0, 1, 5.0, visited=1)
        assert stats.record(r) is r

    def test_record_visited(self):
        stats = SearchStats()
        stats.record_visited(42)
        assert stats.searches == 1
        assert stats.visited == 42

    def test_merge(self):
        a = SearchStats(searches=1, visited=10)
        b = SearchStats(searches=2, visited=5)
        a.merge(b)
        assert a.searches == 3
        assert a.visited == 15

    def test_empty_mean(self):
        assert SearchStats().mean_visited == 0.0
