"""Differential tests: frozen CSR kernels vs the dict-graph searches.

The dispatch contract is *bit identity*, not approximate agreement: the
kernels push the same keys in the same order as the dict implementations,
so distances, paths, visited counts and even the observability counters
must match exactly.  The dict path is the oracle throughout.
"""

import random

import pytest

from repro.network.generators import beijing_like, grid_city
from repro.obs import MetricsRegistry, use_registry
from repro.search.astar import a_star
from repro.search.bidirectional import bidirectional_dijkstra
from repro.search.bidirectional_astar import bidirectional_a_star
from repro.search.dijkstra import (
    bounded_ball,
    bounded_ball_tree,
    dijkstra,
    one_to_many,
    sssp_distances,
    sssp_tree,
)
from repro.search.generalized_astar import generalized_a_star

from tests.conftest import assert_valid_path

POINT_TO_POINT = (dijkstra, a_star, bidirectional_dijkstra, bidirectional_a_star)


@pytest.fixture(autouse=True)
def _scalar_backend(monkeypatch):
    """Pin the scalar CSR backend for this module.

    These assertions include heap pop-order bit-identity, which the
    vectorized numpy sweeps only guarantee for distinct distances; an
    ambient ``REPRO_KERNEL=np`` must not redirect dispatch here.  The
    numpy kernels have their own differential suite in
    ``tests/search/test_np_kernels.py``.
    """
    monkeypatch.setenv("REPRO_KERNEL", "csr")


def _networks():
    """Three structurally different networks; fresh copies per test."""
    return [
        ("grid", grid_city(6, 6, spacing=1.0, seed=3)),
        ("ring", beijing_like("tiny", seed=5)),
        ("sparse", grid_city(9, 4, spacing=2.0, seed=17)),
    ]


def _pairs(graph, count, seed):
    rng = random.Random(seed)
    n = graph.num_vertices
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


def _run_all(graph, source, target):
    """One record per algorithm: (distance, path, visited) + counters."""
    registry = MetricsRegistry()
    out = []
    with use_registry(registry):
        for fn in POINT_TO_POINT:
            r = fn(graph, source, target)
            out.append((fn.__name__, r.distance, tuple(r.path), r.visited))
    counters = {
        k: v for k, v in registry.snapshot().counters.items()
        if k.startswith("search.")
    }
    return out, counters


class TestDifferentialPointToPoint:
    @pytest.mark.parametrize("name,graph", _networks(), ids=lambda x: x if isinstance(x, str) else "")
    def test_200_random_queries_bit_identical(self, name, graph):
        """70 pairs x 3 networks x 4 algorithms: distances, paths, visited
        and obs counters all agree between the dict and CSR paths."""
        frozen = graph.copy()
        frozen.freeze()
        for source, target in _pairs(graph, 70, seed=hash(name) & 0xFFFF):
            dict_out, dict_counters = _run_all(graph, source, target)
            csr_out, csr_counters = _run_all(frozen, source, target)
            assert csr_out == dict_out, (source, target)
            assert csr_counters == dict_counters, (source, target)
            distance = dict_out[0][1]
            path = list(dict_out[0][2])
            if path:
                assert_valid_path(graph, path, source, target, distance)

    def test_mutate_then_refreeze_tracks_new_weights(self):
        graph = grid_city(6, 6, spacing=1.0, seed=3)
        frozen = graph.copy()
        frozen.freeze()
        rng = random.Random(99)
        edges = list(graph.edges())
        for _ in range(5):
            for u, v, _ in rng.sample(edges, 8):
                w = rng.uniform(0.5, 4.0)
                graph.set_weight(u, v, w)
                frozen.set_weight(u, v, w)
            frozen.freeze()  # stale snapshot dropped, new one built
            for source, target in _pairs(graph, 10, seed=rng.randrange(1 << 16)):
                assert _run_all(frozen, source, target) == _run_all(
                    graph, source, target
                )

    def test_stale_snapshot_is_never_dispatched(self):
        graph = grid_city(4, 4, spacing=1.0, seed=1)
        graph.freeze()
        u, v, w = next(iter(graph.edges()))
        graph.set_weight(u, v, w * 10.0)
        # No re-freeze: dispatch must fall back to the dict path and see
        # the new weight rather than the stale snapshot.
        fresh = dijkstra(graph, u, v)
        oracle = dijkstra(graph.copy(), u, v)
        assert fresh.distance == oracle.distance


class TestDifferentialOneToMany:
    @pytest.mark.parametrize("name,graph", _networks(), ids=lambda x: x if isinstance(x, str) else "")
    def test_boundary_searches_match(self, name, graph):
        frozen = graph.copy()
        frozen.freeze()
        rng = random.Random(7)
        n = graph.num_vertices
        for _ in range(8):
            source = rng.randrange(n)
            radius = rng.uniform(1.0, 6.0)
            targets = [rng.randrange(n) for _ in range(6)]

            for backward in (False, True):
                assert bounded_ball(
                    frozen, source, radius, backward=backward
                ) == bounded_ball(graph, source, radius, backward=backward)
                assert bounded_ball_tree(
                    frozen, source, radius, backward=backward
                ) == bounded_ball_tree(graph, source, radius, backward=backward)
                assert one_to_many(
                    frozen, source, targets, backward=backward
                ) == one_to_many(graph, source, targets, backward=backward)
                assert sssp_distances(
                    frozen, source, backward=backward
                ) == sssp_distances(graph, source, backward=backward)
                assert sssp_tree(frozen, source, backward=backward) == sssp_tree(
                    graph, source, backward=backward
                )


class TestDifferentialGeneralized:
    @pytest.mark.parametrize("mode", ["zero", "representative", "min-target"])
    def test_generalized_matches_dict_path(self, mode):
        graph = beijing_like("tiny", seed=5)
        frozen = graph.copy()
        frozen.freeze()
        rng = random.Random(31)
        n = graph.num_vertices
        for _ in range(10):
            source = rng.randrange(n)
            targets = [rng.randrange(n) for _ in range(4)]
            res, visited = generalized_a_star(frozen, source, targets, mode=mode)
            oracle, oracle_visited = generalized_a_star(
                graph, source, targets, mode=mode
            )
            assert visited == oracle_visited
            assert set(res) == set(oracle)
            for t in res:
                assert res[t].distance == oracle[t].distance
                assert res[t].path == oracle[t].path
                assert res[t].visited == oracle[t].visited


class TestDegenerateHeuristics:
    """Satellite: bidirectional A* at heuristic_scale == 0 and w == 0."""

    def _coincident_graph(self):
        # Every vertex at the same point: euclid == 0 on every edge, so
        # heuristic_scale degrades to 0.0 and A* must equal Dijkstra.
        from repro.network.graph import RoadNetwork

        g = RoadNetwork([1.0] * 5, [2.0] * 5)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(0, 2, 4.0)
        g.add_edge(2, 3, 1.5)
        g.add_edge(3, 4, 0.5)
        g.add_edge(0, 4, 9.0)
        return g

    @pytest.mark.parametrize("freeze", [False, True])
    def test_scale_zero_graph_is_exact(self, freeze):
        g = self._coincident_graph()
        assert g.heuristic_scale == 0.0
        if freeze:
            g.freeze()
        for s in range(5):
            for t in range(5):
                want = dijkstra(g, s, t)
                for fn in (a_star, bidirectional_a_star, bidirectional_dijkstra):
                    got = fn(g, s, t)
                    assert got.distance == want.distance, (fn.__name__, s, t)
                    if want.path:
                        assert_valid_path(g, got.path, s, t, got.distance)

    @pytest.mark.parametrize("freeze", [False, True])
    def test_zero_weight_edges_are_exact(self, freeze):
        g = grid_city(4, 4, spacing=1.0, seed=2)
        rng = random.Random(5)
        for u, v, _ in rng.sample(list(g.edges()), 6):
            g.set_weight(u, v, 0.0)
        assert g.heuristic_scale == 0.0  # some edge has w == 0 < euclid
        if freeze:
            g.freeze()
        oracle = g.copy()  # dict path, never frozen
        for s, t in _pairs(g, 25, seed=8):
            want = dijkstra(oracle, s, t)
            for fn in POINT_TO_POINT:
                got = fn(g, s, t)
                # Bit-identical to the same algorithm on the dict graph;
                # bidirectional meets sum dist_f + dist_b, so agreement
                # with plain Dijkstra is only up to rounding.
                ref = fn(oracle, s, t)
                assert got.distance == ref.distance, (fn.__name__, s, t)
                assert got.path == ref.path, (fn.__name__, s, t)
                assert got.distance == pytest.approx(want.distance, rel=1e-12)
