"""Guard the examples: importable, well-formed, and entry-pointed.

Running every example end-to-end belongs to manual/benchmark time (they
use medium-scale networks); these tests catch the regressions that break
them silently — syntax errors, renamed imports, missing main().
"""

import ast
import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExamples:
    def test_parses(self, path):
        ast.parse(path.read_text(encoding="utf-8"))

    def test_has_main_and_guard(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
        assert "main" in names
        assert '__main__' in path.read_text(encoding="utf-8")

    def test_imports_resolve(self, path):
        """Every `from repro...` import in the example must exist."""
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} missing"
                    )

    def test_has_docstring(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLE_FILES}
    assert {
        "quickstart.py",
        "ride_hailing.py",
        "dynamic_traffic.py",
        "long_distance_carpool.py",
        "streaming_day.py",
        "capacity_planning.py",
        "taxi_log_replay.py",
    } <= names
