"""The exception hierarchy: everything is catchable as ReproError."""

import pytest

from repro.exceptions import (
    CacheError,
    ConfigurationError,
    DecompositionError,
    GraphError,
    IndexConstructionError,
    NoPathError,
    QueryError,
    ReproError,
)


ALL_ERRORS = [
    CacheError,
    ConfigurationError,
    DecompositionError,
    GraphError,
    IndexConstructionError,
    QueryError,
]


class TestHierarchy:
    @pytest.mark.parametrize("cls", ALL_ERRORS)
    def test_subclass_of_repro_error(self, cls):
        assert issubclass(cls, ReproError)
        with pytest.raises(ReproError):
            raise cls("boom")

    def test_no_path_error_is_graph_error(self):
        assert issubclass(NoPathError, GraphError)

    def test_no_path_error_carries_endpoints(self):
        err = NoPathError(3, 7)
        assert err.source == 3
        assert err.target == 7
        assert "3" in str(err) and "7" in str(err)

    def test_library_raises_only_repro_errors_for_bad_input(self, ring):
        from repro.core.batch_runner import BatchProcessor
        from repro.queries.query import QuerySet

        with pytest.raises(ReproError):
            BatchProcessor(ring).process(QuerySet(), "no-such-method")
