"""Unit tests for the traffic timeline (dynamic snapshot replay)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.timeline import (
    TrafficTimeline,
    congestion_snapshot,
    incident_snapshot,
    recovery_snapshot,
)


@pytest.fixture()
def city(ring):
    return ring.copy()


class TestScheduling:
    def test_events_fire_in_order(self, city):
        timeline = TrafficTimeline(city, seed=1)
        timeline.schedule(10.0, congestion_snapshot(0.1), "a")
        timeline.schedule(5.0, congestion_snapshot(0.1), "b")  # out of order
        fired = timeline.advance_to(7.0)
        assert fired == 1
        assert timeline.applied[0][1] == "b"
        assert timeline.pending_events == 1
        timeline.advance_to(20.0)
        assert [label for _, label, _ in timeline.applied] == ["b", "a"]

    def test_clock_monotone(self, city):
        timeline = TrafficTimeline(city, seed=1)
        timeline.advance_to(5.0)
        with pytest.raises(ConfigurationError):
            timeline.advance_to(4.0)

    def test_cannot_schedule_in_the_past(self, city):
        timeline = TrafficTimeline(city, seed=1)
        timeline.advance_to(10.0)
        with pytest.raises(ConfigurationError):
            timeline.schedule(5.0, congestion_snapshot(0.1))

    def test_events_fire_once(self, city):
        timeline = TrafficTimeline(city, seed=1)
        timeline.schedule(1.0, congestion_snapshot(0.1))
        timeline.advance_to(2.0)
        assert timeline.advance_to(3.0) == 0


class TestPerturbations:
    def test_congestion_raises_weights_and_version(self, city):
        version = city.version
        total = city.total_weight()
        timeline = TrafficTimeline(city, seed=2)
        timeline.schedule(1.0, congestion_snapshot(0.2, 1.5, 2.0))
        timeline.advance_to(1.0)
        assert city.version > version
        assert city.total_weight() > total

    def test_congestion_keeps_admissibility(self, city):
        timeline = TrafficTimeline(city, seed=2)
        timeline.schedule(1.0, congestion_snapshot(0.5, 1.2, 3.0))
        timeline.advance_to(1.0)
        for u, v, w in city.edges():
            assert w >= city.euclidean(u, v) - 1e-9

    def test_incident_is_localised(self, city):
        timeline = TrafficTimeline(city, seed=3)
        timeline.schedule(1.0, incident_snapshot(radius=5.0, factor=4.0))
        timeline.advance_to(1.0)
        _, _, touched = timeline.applied[0]
        assert 0 < touched < city.num_edges

    def test_recovery_restores_baseline(self, city):
        baseline = {(u, v): w for u, v, w in city.edges()}
        timeline = TrafficTimeline(city, seed=4)
        timeline.schedule(1.0, congestion_snapshot(0.3))
        timeline.schedule(2.0, recovery_snapshot())
        timeline.advance_to(3.0)
        for (u, v), w in baseline.items():
            assert city.weight(u, v) == pytest.approx(w)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            congestion_snapshot(0.0)
        with pytest.raises(ConfigurationError):
            congestion_snapshot(0.5, low=0.5)
        with pytest.raises(ConfigurationError):
            incident_snapshot(radius=0.0)
        with pytest.raises(ConfigurationError):
            incident_snapshot(radius=1.0, factor=0.5)


class TestIntegrationWithDynamicSession:
    def test_epoch_flush_on_timeline_event(self, city, ring_workload):
        from repro.core.dynamic import DynamicBatchSession
        from repro.core.local_cache import LocalCacheAnswerer
        from repro.core.search_space import SearchSpaceDecomposer

        session = DynamicBatchSession(
            city,
            decomposer=SearchSpaceDecomposer(city),
            answerer=LocalCacheAnswerer(city, cache_bytes=10**6),
        )
        timeline = TrafficTimeline(city, seed=5)
        timeline.schedule(10.0, congestion_snapshot(0.2))

        session.process_batch(ring_workload.batch(25))
        timeline.advance_to(5.0)  # nothing due yet
        session.process_batch(ring_workload.batch(25))
        assert session.epochs_flushed == 0
        timeline.advance_to(15.0)  # snapshot fires -> new epoch
        session.process_batch(ring_workload.batch(25))
        assert session.epochs_flushed == 1
