"""Fuzzing the text loader: arbitrary bytes must never crash unstructured.

Whatever garbage lands in a network file, ``load_text`` either parses it
or raises :class:`~repro.exceptions.GraphError` — never IndexError,
ValueError, or a silent half-loaded network.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import GraphError
from repro.network.io import load_text, save_text
from repro.network.generators import grid_city


@given(st.text(max_size=400))
@settings(max_examples=120, deadline=None)
def test_load_text_never_crashes_unstructured(tmp_path_factory, content):
    path = tmp_path_factory.mktemp("fuzz") / "net.gr"
    path.write_text(content, encoding="utf-8")
    try:
        graph = load_text(path)
    except GraphError:
        return
    # If it parsed, it must be internally consistent.
    assert graph.num_vertices >= 0
    for u, v, w in graph.edges():
        assert 0 <= u < graph.num_vertices
        assert w >= 0


@given(
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)).filter(lambda p: p[0] != p[1]),
        min_size=0,
        max_size=10,
        unique=True,
    )
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_of_generated_edge_subsets(tmp_path_factory, pairs):
    base = grid_city(3, 3, seed=5)
    from repro.network.graph import RoadNetwork

    graph = RoadNetwork(base.xs[:6], base.ys[:6])
    for u, v in pairs:
        graph.add_edge(u, v, base.euclidean(u, v) + 0.5)
    path = tmp_path_factory.mktemp("rt") / "sub.gr"
    save_text(graph, path)
    loaded = load_text(path)
    assert sorted(loaded.edges()) == sorted(graph.edges())
    assert loaded.xs == graph.xs
