"""Unit tests for convex hulls and containment."""

import pytest

from repro.network.convexhull import convex_hull, hull_bounding_box, point_in_hull


class TestConvexHull:
    def test_square(self):
        pts = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        hull = convex_hull(pts)
        assert set(hull) == {(0, 0), (1, 0), (1, 1), (0, 1)}

    def test_counter_clockwise(self):
        hull = convex_hull([(0, 0), (2, 0), (1, 2)])
        # Cross products of consecutive hull edges must be positive (CCW).
        n = len(hull)
        for i in range(n):
            o, a, b = hull[i], hull[(i + 1) % n], hull[(i + 2) % n]
            cross = (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
            assert cross > 0

    def test_single_point(self):
        assert convex_hull([(1.0, 2.0)]) == [(1.0, 2.0)]

    def test_two_points(self):
        assert len(convex_hull([(0, 0), (1, 1)])) == 2

    def test_collinear(self):
        hull = convex_hull([(0, 0), (1, 1), (2, 2), (3, 3)])
        assert len(hull) == 2
        assert set(hull) == {(0, 0), (3, 3)}

    def test_duplicates_ignored(self):
        hull = convex_hull([(0, 0), (0, 0), (1, 0), (0, 1)])
        assert len(hull) == 3

    def test_interior_points_excluded(self):
        pts = [(0, 0), (4, 0), (4, 4), (0, 4)] + [(i, j) for i in (1, 2, 3) for j in (1, 2, 3)]
        hull = convex_hull(pts)
        assert len(hull) == 4


class TestPointInHull:
    def test_inside(self):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert point_in_hull((2, 2), hull)

    def test_on_boundary(self):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert point_in_hull((2, 0), hull)
        assert point_in_hull((0, 0), hull)

    def test_outside(self):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert not point_in_hull((5, 2), hull)
        assert not point_in_hull((-0.1, 2), hull)

    def test_degenerate_point_hull(self):
        hull = convex_hull([(1, 1)])
        assert point_in_hull((1, 1), hull)
        assert not point_in_hull((1.1, 1), hull)

    def test_degenerate_segment_hull(self):
        hull = convex_hull([(0, 0), (2, 2)])
        assert point_in_hull((1, 1), hull)
        assert not point_in_hull((1, 1.2), hull)
        assert not point_in_hull((3, 3), hull)

    def test_empty_hull(self):
        assert not point_in_hull((0, 0), [])

    def test_all_input_points_contained(self):
        pts = [(0.3, 1.7), (2.5, 0.1), (4.0, 3.3), (1.1, 4.2), (2.0, 2.0)]
        hull = convex_hull(pts)
        for p in pts:
            assert point_in_hull(p, hull)


class TestBoundingBox:
    def test_box(self):
        hull = convex_hull([(0, 0), (4, 0), (4, 4), (0, 4)])
        assert hull_bounding_box(hull) == (0, 0, 4, 4)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hull_bounding_box([])
