"""Unit tests for the planar geometry helpers."""

import math

import pytest

from repro.network.spatial import (
    Ellipse,
    angular_difference,
    bearing_angle,
    bounding_box,
    centroid,
    euclidean,
    fold_theta,
    reference_angle,
    search_space_ellipse,
    segment_cells,
)


class TestAngles:
    def test_reference_angle_axis_aligned(self):
        assert reference_angle(1.0, 0.0) == 0.0
        assert reference_angle(0.0, 1.0) == 0.0  # parallel to longitude

    def test_reference_angle_diagonal_is_45(self):
        assert math.isclose(reference_angle(1.0, 1.0), 45.0)

    def test_reference_angle_folds_to_at_most_45(self):
        for deg in range(0, 360, 7):
            rad = math.radians(deg)
            angle = reference_angle(math.cos(rad), math.sin(rad))
            assert 0.0 <= angle <= 45.0

    def test_reference_angle_zero_vector(self):
        assert reference_angle(0.0, 0.0) == 0.0

    def test_bearing_quadrants(self):
        assert bearing_angle(1.0, 0.0) == 0.0
        assert math.isclose(bearing_angle(0.0, 1.0), 90.0)
        assert math.isclose(bearing_angle(-1.0, 0.0), 180.0)
        assert math.isclose(bearing_angle(0.0, -1.0), 270.0)

    def test_angular_difference_wraps(self):
        assert math.isclose(angular_difference(350.0, 10.0), 20.0)
        assert math.isclose(angular_difference(10.0, 350.0), 20.0)
        assert angular_difference(90.0, 90.0) == 0.0
        assert math.isclose(angular_difference(0.0, 180.0), 180.0)

    def test_fold_theta(self):
        assert fold_theta(30.0) == 30.0
        assert fold_theta(60.0) == 30.0  # folds past 45
        assert fold_theta(-30.0) == 30.0
        assert fold_theta(90.0) == 0.0


class TestEllipse:
    def test_contains_focus(self):
        e = Ellipse((0.0, 0.0), (2.0, 0.0), 4.0)
        assert e.contains(0.0, 0.0)
        assert e.contains(2.0, 0.0)

    def test_boundary_point(self):
        # Constant sum 4 with foci distance 2: vertex at x = 3.
        e = Ellipse((0.0, 0.0), (2.0, 0.0), 4.0)
        assert e.contains(3.0, 0.0)
        assert not e.contains(3.1, 0.0)

    def test_axes(self):
        e = Ellipse((0.0, 0.0), (2.0, 0.0), 4.0)
        assert math.isclose(e.semi_major, 2.0)
        assert math.isclose(e.semi_minor, math.sqrt(3.0))
        assert e.center == (1.0, 0.0)

    def test_bounding_box_contains_extremes(self):
        e = Ellipse((0.0, 0.0), (2.0, 2.0), 5.0)
        min_x, min_y, max_x, max_y = e.bounding_box()
        # Sample the boundary: every boundary point is inside the box.
        for deg in range(0, 360, 5):
            # Parametrise via the ellipse definition: walk along directions
            # from the centre until exiting; the last inside point must be
            # boxed.
            rad = math.radians(deg)
            cx, cy = e.center
            step = 0.05
            r = 0.0
            while e.contains(cx + math.cos(rad) * (r + step), cy + math.sin(rad) * (r + step)):
                r += step
            px = cx + math.cos(rad) * r
            py = cy + math.sin(rad) * r
            assert min_x - 1e-9 <= px <= max_x + 1e-9
            assert min_y - 1e-9 <= py <= max_y + 1e-9

    def test_degenerate_zero_ellipse(self):
        e = Ellipse((1.0, 1.0), (1.0, 1.0), 0.0)
        assert e.contains(1.0, 1.0)
        assert not e.contains(1.1, 1.0)


class TestSearchSpaceEllipse:
    def test_theta_zero_gives_segment_like_ellipse(self):
        e = search_space_ellipse(0.0, 0.0, 4.0, 0.0, 0.0)
        # cos 0 = 1: focus distance = h, constant sum = h -> degenerate.
        assert math.isclose(e.distance_sum, 4.0)
        assert math.isclose(e.f2[0], 4.0)
        assert e.contains(2.0, 0.0)
        assert not e.contains(2.0, 1.0)

    def test_theta_45_widens_the_ellipse(self):
        narrow = search_space_ellipse(0.0, 0.0, 4.0, 0.0, 10.0)
        wide = search_space_ellipse(0.0, 0.0, 4.0, 0.0, 45.0)
        assert wide.distance_sum > narrow.distance_sum
        assert wide.semi_minor > narrow.semi_minor

    def test_source_is_focus_and_target_inside(self):
        e = search_space_ellipse(1.0, 2.0, 5.0, 6.0, 30.0)
        assert e.f1 == (1.0, 2.0)
        assert e.contains(5.0, 6.0)

    def test_formulas_match_paper(self):
        sx, sy, tx, ty, theta = 0.0, 0.0, 3.0, 4.0, 30.0
        h = 5.0
        cos_t = math.cos(math.radians(theta))
        e = search_space_ellipse(sx, sy, tx, ty, theta)
        assert math.isclose(e.distance_sum, 2 * h / (1 + cos_t))
        d_fs = 2 * h * cos_t / (1 + cos_t)
        assert math.isclose(euclidean(*e.f1, *e.f2), d_fs)

    def test_identical_endpoints(self):
        e = search_space_ellipse(1.0, 1.0, 1.0, 1.0, 20.0)
        assert e.distance_sum == 0.0

    def test_theta_above_45_is_folded(self):
        a = search_space_ellipse(0.0, 0.0, 4.0, 0.0, 50.0)
        b = search_space_ellipse(0.0, 0.0, 4.0, 0.0, 40.0)
        assert math.isclose(a.distance_sum, b.distance_sum)


class TestSegmentCells:
    def test_horizontal_segment(self):
        cells = segment_cells(0.5, 0.5, 3.5, 0.5, (0.0, 0.0), 1.0, 8)
        assert cells == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_vertical_segment(self):
        cells = segment_cells(0.5, 0.2, 0.5, 2.8, (0.0, 0.0), 1.0, 8)
        assert cells == [(0, 0), (0, 1), (0, 2)]

    def test_diagonal_connected(self):
        cells = segment_cells(0.1, 0.1, 3.9, 3.9, (0.0, 0.0), 1.0, 8)
        assert cells[0] == (0, 0)
        assert cells[-1] == (3, 3)
        for (a, b), (c, d) in zip(cells, cells[1:]):
            assert abs(a - c) + abs(b - d) == 1  # 4-connected walk

    def test_single_cell(self):
        assert segment_cells(0.2, 0.2, 0.7, 0.9, (0.0, 0.0), 1.0, 4) == [(0, 0)]

    def test_clamped_to_grid(self):
        cells = segment_cells(-5.0, 0.5, 20.0, 0.5, (0.0, 0.0), 1.0, 4)
        assert all(0 <= i < 4 and 0 <= j < 4 for i, j in cells)

    def test_zero_cell_size_rejected(self):
        with pytest.raises(ValueError):
            segment_cells(0, 0, 1, 1, (0.0, 0.0), 0.0, 4)


class TestAggregates:
    def test_bounding_box(self):
        assert bounding_box([(0, 1), (2, -1), (1, 5)]) == (0, -1, 2, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_centroid(self):
        assert centroid([(0.0, 0.0), (2.0, 4.0)]) == (1.0, 2.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_euclidean(self):
        assert euclidean(0, 0, 3, 4) == 5.0
