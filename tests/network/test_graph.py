"""Unit tests for the RoadNetwork substrate."""

import math

import pytest

from repro.exceptions import GraphError
from repro.network.graph import RoadNetwork


def make_triangle():
    g = RoadNetwork([0.0, 1.0, 0.0], [0.0, 0.0, 1.0])
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 2.0)
    g.add_edge(2, 0, 1.5)
    return g


class TestConstruction:
    def test_vertex_count(self):
        g = RoadNetwork([0.0, 1.0], [0.0, 1.0])
        assert g.num_vertices == 2
        assert len(g) == 2
        assert g.num_edges == 0

    def test_mismatched_coordinates_rejected(self):
        with pytest.raises(GraphError):
            RoadNetwork([0.0, 1.0], [0.0])

    def test_edges_at_construction(self):
        g = RoadNetwork([0.0, 1.0], [0.0, 0.0], edges=[(0, 1, 2.5)])
        assert g.weight(0, 1) == 2.5

    def test_coord(self):
        g = make_triangle()
        assert g.coord(1) == (1.0, 0.0)


class TestEdges:
    def test_add_and_weight(self):
        g = make_triangle()
        assert g.weight(0, 1) == 1.0
        assert g.num_edges == 3

    def test_missing_edge_raises(self):
        g = make_triangle()
        with pytest.raises(GraphError):
            g.weight(1, 0)

    def test_duplicate_edge_rejected(self):
        g = make_triangle()
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 3.0)

    def test_self_loop_rejected(self):
        g = make_triangle()
        with pytest.raises(GraphError):
            g.add_edge(0, 0, 1.0)

    def test_negative_weight_rejected(self):
        g = make_triangle()
        with pytest.raises(GraphError):
            g.add_edge(1, 0, -1.0)

    def test_out_of_range_vertex_rejected(self):
        g = make_triangle()
        with pytest.raises(GraphError):
            g.add_edge(0, 9, 1.0)

    def test_edges_iteration(self):
        g = make_triangle()
        assert sorted(g.edges()) == [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 1.5)]

    def test_neighbors_and_in_neighbors(self):
        g = make_triangle()
        assert [int(v) for v, _ in g.neighbors(0)] == [1]
        assert [int(u) for u, _ in g.in_neighbors(0)] == [2]

    def test_degrees(self):
        g = make_triangle()
        assert g.out_degree(0) == 1
        assert g.in_degree(0) == 1
        assert g.degree(0) == 2


class TestDynamicWeights:
    def test_set_weight_updates_both_directions_of_storage(self):
        g = make_triangle()
        g.set_weight(0, 1, 5.0)
        assert g.weight(0, 1) == 5.0
        # Reverse adjacency sees the new weight too.
        assert [w for u, w in g.in_neighbors(1) if int(u) == 0] == [5.0]

    def test_set_weight_missing_edge(self):
        g = make_triangle()
        with pytest.raises(GraphError):
            g.set_weight(1, 0, 1.0)

    def test_set_weight_negative_rejected(self):
        g = make_triangle()
        with pytest.raises(GraphError):
            g.set_weight(0, 1, -0.5)

    def test_version_bumps_on_every_mutation(self):
        g = make_triangle()
        v0 = g.version
        g.set_weight(0, 1, 2.0)
        assert g.version == v0 + 1

    def test_total_weight_tracks_updates(self):
        g = make_triangle()
        assert math.isclose(g.total_weight(), 4.5)
        g.set_weight(0, 1, 2.0)
        assert math.isclose(g.total_weight(), 5.5)

    def test_scale_weights_all(self):
        g = make_triangle()
        g.scale_weights(2.0)
        assert g.weight(0, 1) == 2.0
        assert g.weight(1, 2) == 4.0

    def test_scale_weights_subset(self):
        g = make_triangle()
        g.scale_weights(3.0, edges=[(0, 1)])
        assert g.weight(0, 1) == 3.0
        assert g.weight(1, 2) == 2.0

    def test_scale_negative_rejected(self):
        g = make_triangle()
        with pytest.raises(GraphError):
            g.scale_weights(-1.0)


class TestHeuristicScale:
    def test_scale_bounded_by_min_ratio(self):
        g = make_triangle()
        # Edge (0,1): w=1.0, euclid=1.0 -> ratio 1.0 is the minimum here.
        ratios = [g.weight(u, v) / g.euclidean(u, v) for u, v, _ in g.edges()]
        assert math.isclose(g.heuristic_scale, min(ratios))

    def test_heuristic_is_admissible_per_edge(self):
        g = make_triangle()
        for u, v, w in g.edges():
            assert g.heuristic(u, v) <= w + 1e-12

    def test_scale_recomputed_after_weight_decrease(self):
        g = make_triangle()
        g.set_weight(1, 2, 0.5)  # euclid(1,2) = sqrt(2) -> ratio ~0.35
        expected = 0.5 / g.euclidean(1, 2)
        assert math.isclose(g.heuristic_scale, expected)

    def test_empty_graph_scale_zero(self):
        g = RoadNetwork([0.0], [0.0])
        assert g.heuristic_scale == 0.0


class TestDerived:
    def test_extent(self):
        g = make_triangle()
        assert g.extent() == (0.0, 0.0, 1.0, 1.0)

    def test_extent_empty_raises(self):
        with pytest.raises(GraphError):
            RoadNetwork([], []).extent()

    def test_edge_direction_in_range(self):
        g = make_triangle()
        for u, v, _ in g.edges():
            assert 0.0 <= g.edge_direction(u, v) <= 45.0

    def test_reversed_copy(self):
        g = make_triangle()
        r = g.reversed_copy()
        assert r.has_edge(1, 0)
        assert not r.has_edge(0, 1)
        assert r.weight(1, 0) == g.weight(0, 1)

    def test_copy_is_independent(self):
        g = make_triangle()
        c = g.copy()
        c.set_weight(0, 1, 9.0)
        assert g.weight(0, 1) == 1.0

    def test_euclidean(self):
        g = make_triangle()
        assert math.isclose(g.euclidean(0, 1), 1.0)
        assert math.isclose(g.euclidean(1, 2), math.sqrt(2.0))

    def test_connectivity_probe(self, ring):
        assert ring.is_strongly_connected_sample()
