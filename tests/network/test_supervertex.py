"""Unit tests for the super-vertex mapping."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.graph import RoadNetwork
from repro.network.supervertex import SuperVertexMap


def cluster_graph():
    """Two tight pairs far apart: (0,1) together, (2,3) together."""
    xs = [0.0, 0.05, 10.0, 10.05, 20.0]
    ys = [0.0, 0.0, 0.0, 0.05, 0.0]
    return RoadNetwork(xs, ys)


class TestSnapping:
    def test_nearby_vertices_share_super(self):
        m = SuperVertexMap(cluster_graph(), snap_radius=0.2)
        assert m.same_super(0, 1)
        assert m.same_super(2, 3)
        assert not m.same_super(1, 2)

    def test_far_vertex_is_own_super(self):
        m = SuperVertexMap(cluster_graph(), snap_radius=0.2)
        assert m.super_of(4) == 4
        assert m.members(4) == [4]

    def test_zero_radius_identity(self):
        g = cluster_graph()
        m = SuperVertexMap(g, snap_radius=0.0)
        for v in range(g.num_vertices):
            assert m.super_of(v) == v
        assert m.num_super_vertices == g.num_vertices
        assert m.compression_ratio == 1.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            SuperVertexMap(cluster_graph(), snap_radius=-1.0)

    def test_members_partition_vertices(self):
        g = cluster_graph()
        m = SuperVertexMap(g, snap_radius=0.2)
        seen = []
        for s in set(m.super_of(v) for v in range(g.num_vertices)):
            seen.extend(m.members(s))
        assert sorted(seen) == list(range(g.num_vertices))

    def test_compression_ratio(self):
        m = SuperVertexMap(cluster_graph(), snap_radius=0.2)
        assert m.num_super_vertices == 3
        assert m.compression_ratio == pytest.approx(5 / 3)

    def test_members_within_radius_of_leader(self):
        g = cluster_graph()
        r = 0.2
        m = SuperVertexMap(g, snap_radius=r)
        for v in range(g.num_vertices):
            leader = m.super_of(v)
            assert g.euclidean(v, leader) <= r + 1e-12

    def test_huge_radius_single_super(self):
        g = cluster_graph()
        m = SuperVertexMap(g, snap_radius=100.0)
        assert m.num_super_vertices == 1

    def test_real_network_compresses(self, ring):
        m = SuperVertexMap(ring, snap_radius=1.0)
        assert m.num_super_vertices < ring.num_vertices
