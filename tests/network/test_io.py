"""Unit tests for network serialisation round-trips."""

import pytest

from repro.exceptions import GraphError
from repro.network.io import load_json, load_text, save_json, save_text


def assert_same_network(a, b):
    assert a.xs == b.xs
    assert a.ys == b.ys
    assert sorted(a.edges()) == sorted(b.edges())


class TestTextFormat:
    def test_roundtrip(self, grid6, tmp_path):
        path = tmp_path / "net.gr"
        save_text(grid6, path)
        assert_same_network(grid6, load_text(path))

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "net.gr"
        path.write_text("c comment\n\np sp 2 1\nv 0 0.0 0.0\nv 1 1.0 0.0\na 0 1 1.5\n")
        g = load_text(path)
        assert g.num_vertices == 2
        assert g.weight(0, 1) == 1.5

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "net.gr"
        path.write_text("v 0 0.0 0.0\n")
        with pytest.raises(GraphError):
            load_text(path)

    def test_edge_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "net.gr"
        path.write_text("p sp 2 5\nv 0 0.0 0.0\nv 1 1.0 0.0\na 0 1 1.0\n")
        with pytest.raises(GraphError):
            load_text(path)

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "net.gr"
        path.write_text("p sp 1 0\nv zero nope\n")
        with pytest.raises(GraphError) as err:
            load_text(path)
        assert ":2:" in str(err.value)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "net.gr"
        path.write_text("p sp 1 0\nx what\n")
        with pytest.raises(GraphError):
            load_text(path)

    def test_weights_roundtrip_exactly(self, tmp_path, line_graph):
        path = tmp_path / "net.gr"
        save_text(line_graph, path)
        loaded = load_text(path)
        for u, v, w in line_graph.edges():
            assert loaded.weight(u, v) == w


class TestJsonFormat:
    def test_roundtrip(self, grid6, tmp_path):
        path = tmp_path / "net.json"
        save_json(grid6, path)
        assert_same_network(grid6, load_json(path))

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "net.json"
        path.write_text("{\"xs\": [0.0]}")
        with pytest.raises(GraphError):
            load_json(path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "net.json"
        path.write_text("not json at all")
        with pytest.raises(GraphError):
            load_json(path)
