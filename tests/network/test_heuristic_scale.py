"""heuristic_scale invalidation: exact under arbitrary mutation interleavings.

The scale caches ``min(w / euclid)`` over all edges.  ``set_weight`` keeps
it exact in O(1) where possible (a lowered ratio *is* the new minimum) and
marks it dirty only when the current argmin edge may have risen — the bug
class fixed here is a raised weight leaving a stale, too-large scale that
makes the A* heuristic inadmissible.
"""

import math
import random

from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork


def brute_force_scale(g):
    best = None
    for u, v, w in g.edges():
        d = g.euclidean(u, v)
        if d > 0:
            r = w / d
            best = r if best is None else min(best, r)
    return 0.0 if best is None else max(0.0, min(best, 1e18))


def line(k=4):
    g = RoadNetwork([float(i) for i in range(k)], [0.0] * k)
    for i in range(k - 1):
        g.add_edge(i, i + 1, 2.0)
    return g


class TestExactInvalidation:
    def test_lowering_any_edge_updates_scale(self):
        g = line()
        assert g.heuristic_scale == 2.0
        g.set_weight(1, 2, 0.5)
        assert g.heuristic_scale == 0.5

    def test_raising_the_argmin_recomputes(self):
        g = line()
        g.set_weight(1, 2, 0.5)  # argmin now (1, 2)
        g.set_weight(1, 2, 3.0)  # argmin raised: stale 0.5 must not survive
        assert g.heuristic_scale == 2.0

    def test_raising_a_non_argmin_edge_keeps_scale(self):
        g = line()
        g.set_weight(1, 2, 0.5)
        g.set_weight(2, 3, 10.0)  # not the argmin; scale unchanged
        assert g.heuristic_scale == 0.5

    def test_add_edge_after_set_weight(self):
        g = line()
        g.set_weight(0, 1, 5.0)
        g.add_edge(3, 0, 0.9)  # euclid 3 -> ratio 0.3, new minimum
        assert g.heuristic_scale == 0.3

    def test_scale_weights_up_then_down(self):
        g = line()
        g.scale_weights(4.0)
        assert g.heuristic_scale == 8.0
        g.scale_weights(0.25)
        assert g.heuristic_scale == 2.0

    def test_zero_length_edges_never_contribute(self):
        g = RoadNetwork([0.0, 0.0, 1.0], [0.0, 0.0, 0.0])
        g.add_edge(0, 1, 7.0)  # euclid == 0: no finite ratio
        assert g.heuristic_scale == 0.0
        g.add_edge(1, 2, 3.0)
        assert g.heuristic_scale == 3.0
        g.set_weight(0, 1, 0.001)  # still ignored
        assert g.heuristic_scale == 3.0

    def test_zero_weight_forces_scale_zero(self):
        g = line()
        g.set_weight(1, 2, 0.0)
        assert g.heuristic_scale == 0.0
        g.set_weight(1, 2, 2.0)
        assert g.heuristic_scale == 2.0

    def test_randomised_interleavings_match_brute_force(self):
        g = grid_city(5, 5, spacing=1.0, seed=21)
        rng = random.Random(77)
        edges = [(u, v) for u, v, _ in g.edges()]
        next_vertex_edge = 0
        for step in range(400):
            op = rng.randrange(10)
            if op < 7:
                u, v = edges[rng.randrange(len(edges))]
                g.set_weight(u, v, rng.uniform(0.0, 5.0))
            elif op < 9:
                g.scale_weights(
                    rng.uniform(0.5, 2.0),
                    edges=rng.sample(edges, 3),
                )
            else:
                u = rng.randrange(g.num_vertices)
                v = rng.randrange(g.num_vertices)
                if u != v and not g.has_edge(u, v):
                    g.add_edge(u, v, rng.uniform(0.1, 5.0))
                    edges.append((u, v))
                next_vertex_edge += 1
            # Interleave reads so the lazy recompute path is also exercised
            # mid-sequence, not just at the end.
            if step % 7 == 0:
                assert math.isclose(
                    g.heuristic_scale, brute_force_scale(g), rel_tol=1e-12
                ), step
        assert math.isclose(g.heuristic_scale, brute_force_scale(g), rel_tol=1e-12)

    def test_admissibility_after_churn(self):
        """The invariant the scale exists for: h(u, v) <= d(u, v)."""
        from repro.search.dijkstra import dijkstra

        g = grid_city(4, 4, spacing=1.0, seed=13)
        rng = random.Random(3)
        edges = [(u, v) for u, v, _ in g.edges()]
        for _ in range(60):
            u, v = edges[rng.randrange(len(edges))]
            g.set_weight(u, v, rng.uniform(0.05, 3.0))
        for s in range(g.num_vertices):
            for t in range(g.num_vertices):
                d = dijkstra(g, s, t).distance
                assert g.heuristic(s, t) <= d + 1e-9, (s, t)
