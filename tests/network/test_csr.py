"""CSR snapshot tests: structural parity, freeze caching, shm lifecycle."""

import math
import pickle
import random

import pytest

from repro.exceptions import GraphError
from repro.network.csr import (
    CSRGraph,
    SharedCSR,
    share_csr,
    shared_size,
)
from repro.network.generators import beijing_like, grid_city
from repro.network.graph import RoadNetwork


@pytest.fixture()
def small():
    """A private mutable copy so freeze/mutate tests don't touch fixtures."""
    return grid_city(5, 5, spacing=1.0, seed=9)


class TestStructuralParity:
    def test_snapshot_mirrors_network(self, small):
        csr = small.freeze()
        assert csr.num_vertices == small.num_vertices
        assert csr.num_edges == small.num_edges
        assert csr.version == small.version
        assert csr.heuristic_scale == small.heuristic_scale
        assert sorted(csr.edges()) == sorted(small.edges())
        assert csr.extent() == small.extent()
        for v in range(small.num_vertices):
            assert csr.coord(v) == small.coord(v)
            assert sorted(csr.neighbors(v)) == sorted(
                (int(t), w) for t, w in small.neighbors(v)
            )
            assert sorted(csr.in_neighbors(v)) == sorted(
                (int(t), w) for t, w in small.in_neighbors(v)
            )
            assert csr.out_degree(v) == small.out_degree(v)
            assert csr.in_degree(v) == small.in_degree(v)
            assert csr.degree(v) == small.degree(v)

    def test_edge_queries_match(self, small):
        csr = small.freeze()
        for u, v, w in small.edges():
            assert csr.has_edge(u, v)
            assert csr.weight(u, v) == w
        assert not csr.has_edge(0, 0)
        with pytest.raises(GraphError):
            csr.weight(0, 0)

    def test_heuristic_and_euclidean_match(self, small):
        csr = small.freeze()
        pairs = [(0, small.num_vertices - 1), (3, 7), (10, 2)]
        for u, v in pairs:
            assert csr.euclidean(u, v) == small.euclidean(u, v)
            assert csr.heuristic(u, v) == small.heuristic(u, v)

    def test_path_prefix_weights_match(self, small):
        csr = small.freeze()
        # Walk along the first grid row.
        path = [0, 1, 2, 3, 4]
        assert csr.path_prefix_weights(path) == small.path_prefix_weights(path)
        with pytest.raises(GraphError):
            csr.path_prefix_weights([0, 0])

    def test_total_weight_is_exact_sum(self, small):
        csr = small.freeze()
        exact = math.fsum(w for _, _, w in small.edges())
        assert csr.total_weight() == exact
        assert small.total_weight() == exact

    def test_csr_is_its_own_frozen_form(self, small):
        csr = small.freeze()
        assert csr.freeze() is csr
        assert csr.frozen_or_none() is csr


class TestFreezeCaching:
    def test_freeze_is_cached_per_version(self, small):
        first = small.freeze()
        assert small.freeze() is first
        assert small.frozen_or_none() is first

    def test_mutation_invalidates_snapshot(self, small):
        first = small.freeze()
        u, v, w = next(iter(small.edges()))
        small.set_weight(u, v, w * 2.0)
        assert small.frozen_or_none() is None
        second = small.freeze()
        assert second is not first
        assert second.version == small.version
        assert second.weight(u, v) == w * 2.0
        assert first.weight(u, v) == w  # old snapshot is immutable

    def test_add_edge_invalidates_snapshot(self, small):
        small.freeze()
        small.add_edge(0, 12, 9.0)
        assert small.frozen_or_none() is None
        assert small.freeze().has_edge(0, 12)

    def test_copy_and_pickle_drop_cached_snapshot(self, small):
        small.freeze()
        clone = pickle.loads(pickle.dumps(small))
        assert clone.frozen_or_none() is None
        assert sorted(clone.edges()) == sorted(small.edges())


class TestWeightSumDrift:
    def test_freeze_recomputes_weight_sum_exactly(self):
        """1e5 incremental updates drift; freeze() snaps back to the fsum."""
        g = RoadNetwork([0.0, 1.0, 2.0], [0.0, 0.0, 0.0])
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 0, 1.0)
        rng = random.Random(42)
        edges = [(0, 1), (1, 2), (2, 0)]
        for _ in range(100_000):
            u, v = edges[rng.randrange(3)]
            g.set_weight(u, v, rng.uniform(0.001, 1000.0) / 3.0)
        exact = math.fsum(w for _, _, w in g.edges())
        g.freeze()
        assert g.total_weight() == exact

    def test_incremental_sum_stays_close_even_unfrozen(self):
        g = RoadNetwork([0.0, 1.0], [0.0, 0.0])
        g.add_edge(0, 1, 0.1)
        for i in range(1000):
            g.set_weight(0, 1, 0.1 + (i % 7) * 0.01)
        exact = math.fsum(w for _, _, w in g.edges())
        assert math.isclose(g.total_weight(), exact, rel_tol=1e-9)


class TestSharedMemory:
    def test_share_attach_roundtrip(self, small):
        csr = small.freeze()
        shared = share_csr(csr)
        try:
            assert isinstance(shared, SharedCSR)
            assert shared.nbytes == shared_size(csr.num_vertices, csr.num_edges)
            attached = CSRGraph.attach(shared.handle)
            try:
                assert attached.is_attached
                assert not csr.is_attached
                assert attached.num_vertices == csr.num_vertices
                assert attached.num_edges == csr.num_edges
                assert attached.heuristic_scale == csr.heuristic_scale
                assert attached.version == csr.version
                assert attached.forward_rows() == csr.forward_rows()
                assert attached.reverse_rows() == csr.reverse_rows()
                assert list(attached.xs) == list(csr.xs)
                assert list(attached.ys) == list(csr.ys)
            finally:
                attached.release()
        finally:
            shared.close()

    def test_attached_snapshot_refuses_pickle(self, small):
        shared = share_csr(small.freeze())
        try:
            attached = CSRGraph.attach(shared.handle)
            try:
                with pytest.raises(GraphError):
                    pickle.dumps(attached)
            finally:
                attached.release()
        finally:
            shared.close()

    def test_release_is_idempotent_and_clears_buffers(self, small):
        shared = share_csr(small.freeze())
        attached = CSRGraph.attach(shared.handle)
        attached.release()
        assert not attached.is_attached
        assert len(attached.fweight) == 0  # unmapped memory is unreachable
        attached.release()  # second call is a no-op
        shared.close()

    def test_release_is_noop_on_local_snapshot(self, small):
        csr = small.freeze()
        csr.release()
        assert csr.num_edges == len(csr.ftarget)  # buffers intact

    def test_close_unlinks_segment(self, small):
        """After the owner closes, the name is gone: no leaked segment."""
        from multiprocessing import shared_memory

        shared = share_csr(small.freeze())
        name = shared.handle.name
        shared.close()
        assert not shared.is_open
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        shared.close()  # idempotent

    def test_local_pickle_roundtrip(self, small):
        csr = small.freeze()
        clone = pickle.loads(pickle.dumps(csr))
        assert clone.num_vertices == csr.num_vertices
        assert clone.forward_rows() == csr.forward_rows()
        assert clone.reverse_rows() == csr.reverse_rows()
        assert clone.heuristic_scale == csr.heuristic_scale
        assert clone.version == csr.version

    def test_attached_pickles_after_release_of_other(self):
        """Sharing ring-radial networks works at every preset size."""
        g = beijing_like("tiny", seed=3)
        shared = share_csr(g.freeze())
        attached = CSRGraph.attach(shared.handle)
        assert attached.total_weight() == g.freeze().total_weight()
        attached.release()
        shared.close()


class TestSharedSize:
    def test_shared_size_formula(self):
        # 4 double blocks (2m + 2n values) + 4 int blocks (2n + 2 + 2m values).
        n, m = 7, 13
        assert shared_size(n, m) == 8 * (2 * m + 2 * n) + 4 * (2 * (n + 1) + 2 * m)

    def test_nbytes_matches_segment(self, small):
        csr = small.freeze()
        assert csr.nbytes == shared_size(csr.num_vertices, csr.num_edges)
