"""Unit tests for the multi-level grid index."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.network.grid import GridIndex
from repro.network.spatial import Ellipse, search_space_ellipse


@pytest.fixture(scope="module")
def index(ring):
    return GridIndex(ring, levels=4)


class TestConstruction:
    def test_levels_validated(self, ring):
        with pytest.raises(ConfigurationError):
            GridIndex(ring, levels=0)
        with pytest.raises(ConfigurationError):
            GridIndex(ring, levels=13)

    def test_all_vertices_indexed(self, ring, index):
        total = sum(
            len(index.vertices_in_cell((i, j)))
            for i in range(index.cells_per_side)
            for j in range(index.cells_per_side)
        )
        assert total == ring.num_vertices

    def test_vertex_cell_roundtrip(self, ring, index):
        for v in range(0, ring.num_vertices, 7):
            cell = index.cell_of_vertex(v)
            assert v in index.vertices_in_cell(cell)

    def test_root_summary_aggregates_everything(self, ring, index):
        root = index.summary((0, 0), level=0)
        assert root.n == ring.num_vertices
        assert math.isclose(root.weight, ring.total_weight(), rel_tol=1e-9)

    def test_level_counts_consistent(self, ring, index):
        for level in range(index.levels + 1):
            count = sum(s.n for s in index._level_cells[level].values())
            assert count == ring.num_vertices


class TestDirections:
    def test_cell_theta_in_range(self, index):
        for summary in index._cells.values():
            assert 0.0 <= summary.theta <= 45.0

    def test_direction_of_cells_weighted_average(self, index):
        cells = list(index._cells.keys())[:4]
        theta = index.direction_of_cells(cells)
        assert 0.0 <= theta <= 45.0

    def test_direction_of_empty_cells_is_zero(self, index):
        assert index.direction_of_cells([(-1, -1)]) == 0.0

    def test_axis_aligned_grid_has_small_theta(self, grid6):
        # A jittered Manhattan grid's roads hug the axes.
        gi = GridIndex(grid6, levels=3)
        root = gi.summary((0, 0), level=0)
        assert root.theta < 20.0


class TestGeometry:
    def test_cell_of_point_clamps(self, index):
        last = index.cells_per_side - 1
        assert index.cell_of_point(-1e9, -1e9) == (0, 0)
        assert index.cell_of_point(1e9, 1e9) == (last, last)

    def test_cell_corners_form_square(self, index):
        corners = index.cell_corners((2, 3))
        xs = {c[0] for c in corners}
        ys = {c[1] for c in corners}
        assert len(xs) == 2 and len(ys) == 2
        assert math.isclose(max(xs) - min(xs), index.cell_size)

    def test_cell_center_inside_cell(self, index):
        cx, cy = index.cell_center((1, 1))
        assert index.cell_of_point(cx, cy) == (1, 1)

    def test_traversed_cells_cover_endpoints(self, ring, index):
        sx, sy = ring.coord(3)
        tx, ty = ring.coord(80)
        cells = index.traversed_cells(sx, sy, tx, ty)
        assert index.cell_of_point(sx, sy) == cells[0]
        assert index.cell_of_point(tx, ty) == cells[-1]

    def test_cells_in_box(self, index):
        cells = index.cells_in_box(*index.cell_corners((1, 1))[0], *index.cell_corners((2, 2))[2])
        assert (1, 1) in cells and (2, 2) in cells

    def test_summary_bad_level(self, index):
        with pytest.raises(ConfigurationError):
            index.summary((0, 0), level=99)


class TestCoveredCells:
    def brute_force(self, index, ellipse):
        out = set()
        for i in range(index.cells_per_side):
            for j in range(index.cells_per_side):
                inside = sum(
                    1 for cx, cy in index.cell_corners((i, j)) if ellipse.contains(cx, cy)
                )
                if inside >= 2:
                    out.add((i, j))
        return out

    def test_matches_brute_force(self, ring, index):
        sx, sy = ring.coord(0)
        tx, ty = ring.coord(100)
        for theta in (0.0, 20.0, 45.0):
            ellipse = search_space_ellipse(sx, sy, tx, ty, theta)
            fast = index.covered_cells(ellipse)
            assert fast == self.brute_force(index, ellipse)

    def test_extra_cells_always_included(self, index):
        ellipse = Ellipse((0.0, 0.0), (0.0, 0.0), 0.0)
        covered = index.covered_cells(ellipse, extra=[(5, 5)])
        assert (5, 5) in covered

    def test_wider_theta_covers_more(self, ring, index):
        sx, sy = ring.coord(0)
        tx, ty = ring.coord(100)
        narrow = index.covered_cells(search_space_ellipse(sx, sy, tx, ty, 5.0))
        wide = index.covered_cells(search_space_ellipse(sx, sy, tx, ty, 45.0))
        assert len(wide) >= len(narrow)

    def test_nonempty_cells_positive(self, index):
        assert index.nonempty_cells > 0
