"""Unit tests for the synthetic network generators."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.network.generators import (
    beijing_like,
    grid_city,
    random_geometric_city,
    ring_radial_city,
)
from repro.search.dijkstra import sssp_distances


def assert_weights_dominate_euclid(graph):
    for u, v, w in graph.edges():
        assert w >= graph.euclidean(u, v) - 1e-12


def assert_strongly_connected(graph):
    fwd = sssp_distances(graph, 0)
    bwd = sssp_distances(graph, 0, backward=True)
    assert all(not math.isinf(d) for d in fwd)
    assert all(not math.isinf(d) for d in bwd)


class TestGridCity:
    def test_size(self):
        g = grid_city(4, 5)
        assert g.num_vertices == 20
        # 2-way roads on every lattice adjacency: (3*5 + 4*4) * 2.
        assert g.num_edges == 2 * (3 * 5 + 4 * 4)

    def test_connected(self):
        assert_strongly_connected(grid_city(5, 5, seed=1))

    def test_admissible_weights(self):
        assert_weights_dominate_euclid(grid_city(5, 5, seed=2))

    def test_deterministic(self):
        a = grid_city(4, 4, seed=9)
        b = grid_city(4, 4, seed=9)
        assert list(a.edges()) == list(b.edges())
        assert a.xs == b.xs

    def test_different_seeds_differ(self):
        a = grid_city(4, 4, seed=1)
        b = grid_city(4, 4, seed=2)
        assert a.xs != b.xs

    def test_diagonal_avenues_add_edges(self):
        base = grid_city(8, 8, seed=4)
        with_av = grid_city(8, 8, seed=4, diagonal_avenues=6)
        assert with_av.num_edges > base.num_edges
        assert_weights_dominate_euclid(with_av)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_city(1, 5)

    def test_bad_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_city(4, 4, jitter=0.6)

    def test_bad_detour_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_city(4, 4, min_detour=0.5)
        with pytest.raises(ConfigurationError):
            grid_city(4, 4, min_detour=1.2, max_detour=1.1)


class TestRingRadialCity:
    def test_size_formula(self):
        g = ring_radial_city(rings=3, spokes=8, points_between_spokes=2)
        assert g.num_vertices == 1 + 3 * 8 * 3

    def test_connected(self):
        assert_strongly_connected(ring_radial_city(rings=3, spokes=6, seed=2))

    def test_admissible_weights(self):
        assert_weights_dominate_euclid(ring_radial_city(rings=2, spokes=5, seed=3))

    def test_deterministic(self):
        a = ring_radial_city(rings=2, spokes=5, seed=7)
        b = ring_radial_city(rings=2, spokes=5, seed=7)
        assert list(a.edges()) == list(b.edges())

    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            ring_radial_city(rings=0, spokes=8)
        with pytest.raises(ConfigurationError):
            ring_radial_city(rings=2, spokes=2)


class TestRandomGeometricCity:
    def test_connected_and_admissible(self):
        g = random_geometric_city(60, side=20.0, seed=4)
        assert g.num_vertices == 60
        assert_strongly_connected(g)
        assert_weights_dominate_euclid(g)

    def test_deterministic(self):
        a = random_geometric_city(30, seed=5)
        b = random_geometric_city(30, seed=5)
        assert list(a.edges()) == list(b.edges())

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            random_geometric_city(3)


class TestBeijingLike:
    @pytest.mark.parametrize("scale", ["tiny", "small"])
    def test_presets_connected(self, scale):
        g = beijing_like(scale)
        assert_strongly_connected(g)
        assert_weights_dominate_euclid(g)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            beijing_like("galactic")

    def test_scales_grow(self):
        assert beijing_like("tiny").num_vertices < beijing_like("small").num_vertices
