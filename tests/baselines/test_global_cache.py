"""Unit tests for the Global Cache baseline."""

import math

import pytest

from repro.baselines.global_cache import GlobalCacheAnswerer, split_log_and_stream
from repro.search.dijkstra import dijkstra


class TestSplit:
    def test_default_twenty_percent(self, ring_batch):
        log, stream = split_log_and_stream(ring_batch)
        assert len(log) == int(len(ring_batch) * 0.2)
        assert len(log) + len(stream) == len(ring_batch)

    def test_custom_fraction(self, ring_batch):
        log, stream = split_log_and_stream(ring_batch, 0.5)
        assert len(log) == len(ring_batch) // 2

    def test_order_preserved(self, ring_batch):
        log, stream = split_log_and_stream(ring_batch)
        assert list(log) + list(stream) == list(ring_batch)


class TestBuild:
    def test_build_populates_cache(self, ring, ring_batch):
        log, _ = split_log_and_stream(ring_batch)
        gc = GlobalCacheAnswerer(ring)
        cache = gc.build(log)
        assert cache.num_paths > 0
        assert gc.cache_bytes == cache.size_bytes
        assert gc.build_seconds >= 0.0
        assert gc.build_visited > 0

    def test_build_skips_already_answerable(self, ring):
        from repro.queries.query import QuerySet

        # The second query is a sub-path of the first -> no second path.
        path = dijkstra(ring, 1, 100).path
        if len(path) < 3:
            pytest.skip("path too short on this network")
        log = QuerySet.from_pairs([(1, 100), (path[0], path[1])])
        gc = GlobalCacheAnswerer(ring)
        cache = gc.build(log)
        assert cache.num_paths == 1

    def test_capacity_keeps_most_beneficial(self, ring, ring_batch):
        log, _ = split_log_and_stream(ring_batch, 0.5)
        unlimited = GlobalCacheAnswerer(ring)
        unlimited.build(log)
        limited = GlobalCacheAnswerer(
            ring, capacity_bytes=unlimited.cache_bytes // 2
        )
        limited.build(log)
        assert limited.cache_bytes <= unlimited.cache_bytes // 2
        assert limited.cache.num_paths < unlimited.cache.num_paths


class TestAnswer:
    def test_answers_are_exact(self, ring, ring_batch):
        log, stream = split_log_and_stream(ring_batch)
        gc = GlobalCacheAnswerer(ring)
        gc.build(log)
        answer = gc.answer(stream)
        assert answer.num_queries == len(stream)
        for q, r in answer.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_answer_before_build_raises(self, ring, ring_batch):
        with pytest.raises(RuntimeError):
            GlobalCacheAnswerer(ring).answer(ring_batch)

    def test_static_cache_not_updated_by_stream(self, ring, ring_batch):
        log, stream = split_log_and_stream(ring_batch)
        gc = GlobalCacheAnswerer(ring)
        gc.build(log)
        before = gc.cache.num_paths
        gc.answer(stream)
        assert gc.cache.num_paths == before

    def test_hit_ratio_reported(self, ring, ring_batch):
        log, stream = split_log_and_stream(ring_batch)
        gc = GlobalCacheAnswerer(ring)
        gc.build(log)
        answer = gc.answer(stream)
        assert 0.0 <= answer.hit_ratio <= 1.0
        assert answer.cache_hits + answer.cache_misses == len(stream)
