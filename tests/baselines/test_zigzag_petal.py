"""Unit tests for the Zigzag-Petal baseline."""

import math

import pytest

from repro.baselines.zigzag_petal import ZigzagPetalAnswerer
from repro.queries.query import QuerySet
from repro.search.dijkstra import dijkstra


class TestZigzagPetal:
    def test_all_queries_answered_exactly(self, ring, ring_batch):
        answer = ZigzagPetalAnswerer(ring).answer(ring_batch)
        assert answer.num_queries == len(ring_batch)
        for q, r in answer.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_duplicates_preserved(self, ring):
        qs = QuerySet.from_pairs([(0, 100), (0, 100), (0, 50)])
        answer = ZigzagPetalAnswerer(ring).answer(qs)
        assert answer.num_queries == 3

    def test_shared_runs_reduce_vnn(self, ring):
        # Eight queries from one source to a tight target cloud.
        anchor = 100
        targets = sorted(
            range(ring.num_vertices), key=lambda v: ring.euclidean(anchor, v)
        )[:8]
        qs = QuerySet.from_pairs([(0, t) for t in targets])
        petal = ZigzagPetalAnswerer(ring).answer(qs)
        separate = sum(dijkstra(ring, 0, t).visited for t in targets)
        assert petal.visited < separate

    def test_petal_count_recorded(self, ring, ring_batch):
        answer = ZigzagPetalAnswerer(ring).answer(ring_batch)
        assert 0 < answer.num_clusters <= len(ring_batch.deduplicated())

    def test_min_target_mode(self, ring, ring_batch):
        answer = ZigzagPetalAnswerer(ring, heuristic_mode="min-target").answer(
            ring_batch[:20]
        )
        for q, r in answer.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_decompose_time_recorded(self, ring, ring_batch):
        answer = ZigzagPetalAnswerer(ring).answer(ring_batch)
        assert answer.decompose_seconds >= 0.0
