"""Unit tests for the per-query baseline."""

import math

import pytest

from repro.baselines.one_by_one import OneByOneAnswerer
from repro.exceptions import ConfigurationError
from repro.search.dijkstra import dijkstra


class TestOneByOne:
    def test_astar_exact(self, ring, ring_batch):
        answer = OneByOneAnswerer(ring, "astar").answer(ring_batch)
        for q, r in answer.answers:
            assert math.isclose(
                r.distance, dijkstra(ring, q.source, q.target).distance, rel_tol=1e-12
            )

    def test_dijkstra_variant(self, ring, ring_batch):
        answer = OneByOneAnswerer(ring, "dijkstra").answer(ring_batch[:10])
        assert answer.num_queries == 10

    def test_astar_visits_fewer(self, ring, ring_batch):
        astar = OneByOneAnswerer(ring, "astar").answer(ring_batch)
        dij = OneByOneAnswerer(ring, "dijkstra").answer(ring_batch)
        assert astar.visited <= dij.visited

    def test_method_label(self, ring, ring_batch):
        answer = OneByOneAnswerer(ring).answer(ring_batch[:5], method="custom")
        assert answer.method == "custom"

    def test_unknown_algorithm_rejected(self, ring):
        with pytest.raises(ConfigurationError):
            OneByOneAnswerer(ring, "bfs")

    def test_visited_accumulates(self, ring, ring_batch):
        answer = OneByOneAnswerer(ring).answer(ring_batch[:10])
        assert answer.visited == sum(r.visited for _, r in answer.answers)
        assert answer.visited > 0
