"""Unit tests for the Group baseline reconstruction."""

import math

import pytest

from repro.baselines.group import GroupAnswerer
from repro.core.coclustering import CoClusteringDecomposer
from repro.queries.query import Query, QuerySet
from repro.search.dijkstra import dijkstra


@pytest.fixture(scope="module")
def decomposition(ring, ring_batch):
    return CoClusteringDecomposer(ring, eta=0.05).decompose(ring_batch)


class TestGroup:
    def test_all_queries_answered(self, ring, decomposition, ring_batch):
        answer = GroupAnswerer(ring).answer(decomposition)
        assert answer.num_queries == len(ring_batch)

    def test_representative_queries_exact(self, ring, decomposition):
        answer = GroupAnswerer(ring).answer(decomposition)
        for q, r in answer.answers:
            if r.exact:
                truth = dijkstra(ring, q.source, q.target).distance
                assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_non_representative_flagged_approximate(self, ring):
        qs = QuerySet.from_pairs([(1, 100), (2, 100)])
        # Force both into one cluster with a generous eta.
        d = CoClusteringDecomposer(ring, eta=0.9).decompose(qs)
        if len(d) != 1:
            pytest.skip("geometry did not co-cluster the pair")
        answer = GroupAnswerer(ring).answer(d)
        exactness = {q: r.exact for q, r in answer.answers}
        assert exactness[Query(1, 100)]  # the centre's source
        assert not exactness[Query(2, 100)]

    def test_no_error_bound_but_finite(self, ring, decomposition):
        answer = GroupAnswerer(ring).answer(decomposition)
        for q, r in answer.answers:
            assert not math.isinf(r.distance)

    def test_visited_positive(self, ring, decomposition):
        assert GroupAnswerer(ring).answer(decomposition).visited > 0
