"""Unit tests for the k-Path (k=1) baseline."""

import math

import pytest

from repro.baselines.kpath import KPathAnswerer
from repro.core.coclustering import CoClusteringDecomposer
from repro.queries.query import Query, QuerySet
from repro.queries.workload import band_for_network
from repro.search.dijkstra import dijkstra


@pytest.fixture(scope="module")
def long_batch(ring, ring_workload):
    lo, hi = band_for_network(ring, "r2r")
    return ring_workload.batch(50, min_dist=lo, max_dist=hi)


@pytest.fixture(scope="module")
def decomposition(ring, long_batch):
    return CoClusteringDecomposer(ring, eta=0.05).decompose(long_batch)


class TestKPath:
    def test_all_queries_answered(self, ring, decomposition, long_batch):
        answer = KPathAnswerer(ring).answer(decomposition)
        assert answer.num_queries == len(long_batch)

    def test_answers_never_below_truth(self, ring, decomposition):
        answer = KPathAnswerer(ring).answer(decomposition)
        for q, r in answer.answers:
            if math.isinf(r.distance):
                continue
            truth = dijkstra(ring, q.source, q.target).distance
            assert r.distance >= truth - 1e-9

    def test_singleton_cluster_exact(self, ring):
        qs = QuerySet([Query(0, 100)])
        d = CoClusteringDecomposer(ring, eta=0.05).decompose(qs)
        answer = KPathAnswerer(ring).answer(d)
        q, r = answer.answers[0]
        assert r.exact
        assert math.isclose(r.distance, dijkstra(ring, 0, 100).distance)

    def test_border_query_is_exact(self, ring, decomposition):
        answer = KPathAnswerer(ring).answer(decomposition)
        exact = [r for _, r in answer.answers if r.exact]
        assert exact  # at least the spine endpoints per multi cluster

    def test_error_can_exceed_r2r_bound(self, ring, decomposition):
        """k-Path has no error guarantee; we only check it stays finite."""
        answer = KPathAnswerer(ring).answer(decomposition)
        for q, r in answer.answers:
            assert not math.isinf(r.distance)

    def test_visited_accounted(self, ring, decomposition):
        answer = KPathAnswerer(ring).answer(decomposition)
        assert answer.visited > 0

    def test_method_label(self, ring, decomposition):
        answer = KPathAnswerer(ring).answer(decomposition, method="kp")
        assert answer.method == "kp"
