"""Spawn-context workers: shared-memory bootstrap, identity, leak checks.

These tests force ``start_method="spawn"`` so the worker bootstrap runs the
real ``init_spawn_shared`` path (attach by segment name) instead of fork's
copy-on-write inheritance — on Linux CI fork is the default, so without
forcing, the shm code would only ever run on macOS/Windows.
"""

import math
import pickle

import pytest

import repro.parallel.worker as worker
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.network.csr import share_csr
from repro.obs import MetricsRegistry, use_registry
from repro.parallel import ParallelBatchEngine
from repro.queries.workload import WorkloadGenerator

ANSWERER_KWARGS = {"cache_bytes": 64 * 1024, "order": "longest"}


def answers_key(batch):
    return [(q, r.distance, tuple(r.path), r.exact) for q, r in batch.answers]


def segment_exists(name: str) -> bool:
    from multiprocessing import resource_tracker, shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass
    shm.close()
    return True


@pytest.fixture(scope="module")
def decomposition(ring, ring_batch):
    return SearchSpaceDecomposer(ring).decompose(ring_batch)


@pytest.fixture(scope="module")
def serial_answer(ring, decomposition):
    answerer = LocalCacheAnswerer(ring, **ANSWERER_KWARGS)
    return answerer.answer(decomposition, method="slc-s")


class TestSpawnSharedMemory:
    def test_spawn_shared_matches_serial_and_releases_segment(
        self, ring, decomposition, serial_answer
    ):
        registry = MetricsRegistry()
        engine = ParallelBatchEngine(
            ring,
            workers=2,
            start_method="spawn",
            answerer_kwargs=ANSWERER_KWARGS,
        )
        with use_registry(registry):
            with engine:
                outcome = engine.execute(decomposition, method="slc-s")
                assert engine._shared is not None
                name = engine._shared.handle.name
                assert segment_exists(name)
        assert answers_key(outcome.answer) == answers_key(serial_answer)
        assert outcome.answer.visited == serial_answer.visited
        # Shutdown unlinked the engine-owned segment: nothing leaked.
        assert engine._shared is None
        assert not segment_exists(name)
        snap = registry.snapshot()
        assert snap.counters["csr.shm_segments"] == 1
        assert snap.counters["csr.shm_attaches"] >= 1
        # The spawn payload is the handle, not the graph: a few hundred
        # bytes instead of the multi-KB pickled network.
        payload = snap.counters["parallel.spawn_payload_bytes"]
        assert payload < len(pickle.dumps(ring)) / 10

    def test_spawn_pickled_graph_matches_serial(
        self, ring, decomposition, serial_answer
    ):
        """shared_graph=False keeps the legacy pickle bootstrap working."""
        engine = ParallelBatchEngine(
            ring,
            workers=2,
            start_method="spawn",
            shared_graph=False,
            answerer_kwargs=ANSWERER_KWARGS,
        )
        with engine:
            outcome = engine.execute(decomposition, method="slc-s")
            assert engine._shared is None  # no segment was ever created
        assert answers_key(outcome.answer) == answers_key(serial_answer)

    def test_version_bump_replaces_segment(self, ring):
        graph = ring.copy()
        decomposer = SearchSpaceDecomposer(graph)
        batch = WorkloadGenerator(graph, seed=401).batch(20)
        engine = ParallelBatchEngine(
            graph, workers=2, start_method="spawn", answerer_kwargs=ANSWERER_KWARGS
        )
        with engine:
            engine.execute(decomposer.decompose(batch))
            first = engine._shared.handle.name
            u, v, w = next(iter(graph.edges()))
            graph.set_weight(u, v, w * 2.0)
            outcome = engine.execute(decomposer.decompose(batch))
            second = engine._shared.handle.name
            assert second != first
            assert not segment_exists(first)  # stale segment unlinked
        assert not segment_exists(second)
        from repro.search.dijkstra import dijkstra

        for q, r in outcome.answer.answers:
            truth = dijkstra(graph, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_pool_failure_releases_segment(self, ring, decomposition):
        engine = ParallelBatchEngine(
            ring, workers=2, start_method="spawn", answerer_kwargs=ANSWERER_KWARGS
        )
        with engine:
            engine.execute(decomposition)
            name = engine._shared.handle.name
            engine._note_pool_failure()
            assert engine._shared is None
            assert not segment_exists(name)
            # The engine still answers (rebuilding pool and segment lazily).
            outcome = engine.execute(decomposition)
            assert outcome.answer.num_queries == decomposition.num_queries


class TestWorkerBootstrapInProcess:
    """Drive init_spawn_shared / release_attached in this process."""

    def teardown_method(self):
        worker.release_attached()
        worker.clear_parent_state()

    def test_init_spawn_shared_attaches_and_answers(self, ring, decomposition):
        shared = share_csr(ring.freeze())
        try:
            payload = pickle.dumps((shared.handle, "local-cache", ANSWERER_KWARGS))
            worker.init_spawn_shared(payload)
            assert worker._ATTACHED is not None
            assert worker._ATTACHED.is_attached
            assert worker._ATTACH_PENDING
            cluster = next(c for c in decomposition.clusters if len(c))
            index, answer, pid, _, _, snapshot = worker.answer_unit(
                (0, cluster, True, None)
            )
            assert index == 0
            assert answer.num_queries == len(cluster)
            # The attach event rode home with the first collected unit...
            assert snapshot.counters["csr.shm_attaches"] == 1
            _, _, _, _, _, snapshot2 = worker.answer_unit((1, cluster, True, None))
            # ...and only the first.
            assert "csr.shm_attaches" not in snapshot2.counters
            attached = worker._ATTACHED
            worker.release_attached()
            assert worker._ATTACHED is None
            assert not attached.is_attached
            worker.release_attached()  # idempotent
        finally:
            shared.close()

    def test_init_spawn_plain_pickle_still_works(self, ring, decomposition):
        payload = pickle.dumps((ring, "local-cache", ANSWERER_KWARGS))
        worker.init_spawn(payload)
        assert worker._ATTACHED is None
        cluster = next(c for c in decomposition.clusters if len(c))
        index, answer, _, _, _, _ = worker.answer_unit((3, cluster, False, None))
        assert index == 3
        assert answer.num_queries == len(cluster)
