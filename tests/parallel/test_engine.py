"""Parallel engine tests: determinism, reporting, graceful degradation."""

import math

import pytest

from repro.core.batch_runner import BatchProcessor
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.r2r import RegionToRegionAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.exceptions import ConfigurationError
from repro.parallel import ParallelBatchEngine
from repro.queries.workload import WorkloadGenerator, band_for_network
from repro.search.dijkstra import dijkstra


def answers_key(batch):
    """Everything that must be byte-identical between serial and parallel."""
    return [(q, r.distance, tuple(r.path), r.exact) for q, r in batch.answers]


@pytest.fixture(scope="module")
def decomposition(ring, ring_batch):
    return SearchSpaceDecomposer(ring).decompose(ring_batch)


@pytest.fixture(scope="module")
def serial_answer(ring, decomposition):
    answerer = LocalCacheAnswerer(ring, cache_bytes=64 * 1024, order="longest")
    return answerer.answer(decomposition, method="slc-s")


class TestIdenticalToSerial:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_local_cache_engine_matches_serial(
        self, ring, decomposition, serial_answer, workers
    ):
        engine = ParallelBatchEngine(
            ring,
            workers=workers,
            answerer_kwargs={"cache_bytes": 64 * 1024, "order": "longest"},
        )
        with engine:
            outcome = engine.execute(decomposition, method="slc-s")
        assert answers_key(outcome.answer) == answers_key(serial_answer)
        assert outcome.answer.visited == serial_answer.visited
        assert outcome.answer.cache_hits == serial_answer.cache_hits
        assert outcome.answer.cache_misses == serial_answer.cache_misses
        assert outcome.answer.cache_bytes == serial_answer.cache_bytes
        assert outcome.answer.num_clusters == serial_answer.num_clusters
        assert outcome.answer.method == "slc-s"

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("method", ["zlc", "slc-s"])
    def test_batch_processor_workers_match_serial(
        self, ring, ring_batch, method, workers
    ):
        serial = BatchProcessor(ring).process(ring_batch, method)
        parallel = BatchProcessor(ring, workers=workers).process(ring_batch, method)
        assert answers_key(parallel) == answers_key(serial)
        assert parallel.visited == serial.visited
        if workers > 1:
            assert parallel.workers > 1
            assert parallel.execution_report is not None

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_r2r_longest_matches_serial(self, ring, workers):
        lo, hi = band_for_network(ring, "r2r")
        batch = WorkloadGenerator(ring, seed=11).batch(40, min_dist=lo, max_dist=hi)
        serial = BatchProcessor(ring).process(batch, "r2r-s")
        parallel = BatchProcessor(ring, workers=workers).process(batch, "r2r-s")
        assert answers_key(parallel) == answers_key(serial)

    def test_query_set_becomes_singleton_units(self, ring, ring_batch):
        from repro.baselines.one_by_one import OneByOneAnswerer

        serial = OneByOneAnswerer(ring, "astar").answer(ring_batch, "astar")
        engine = ParallelBatchEngine(ring, workers=2, answerer_kind="one-by-one")
        with engine:
            outcome = engine.execute(ring_batch, method="astar")
        assert answers_key(outcome.answer) == answers_key(serial)
        assert len(outcome.report.units) == len(ring_batch)

    def test_random_order_methods_stay_serial(self, ring, ring_batch):
        answer = BatchProcessor(ring, workers=4).process(ring_batch, "slc-r")
        assert answer.workers == 1
        assert answer.execution_report is None


class TestReporting:
    def test_execution_report_accounting(self, ring, decomposition):
        engine = ParallelBatchEngine(
            ring, workers=2, answerer_kwargs={"cache_bytes": 64 * 1024}
        )
        with engine:
            outcome = engine.execute(decomposition, method="slc-s")
        report = outcome.report
        busy_units = [c for c in decomposition.clusters if len(c)]
        assert report.workers == 2
        assert len(report.units) == len(busy_units)
        assert all(u.queue_wait_seconds >= 0.0 for u in report.units)
        assert all(u.busy_seconds >= 0.0 for u in report.units)
        assert report.wall_seconds > 0.0
        stats = report.worker_stats()
        assert sum(s.units for s in stats) == len(busy_units)
        assert math.isclose(
            sum(s.busy_seconds for s in stats), report.total_busy_seconds
        )

    def test_schedule_result_is_measured(self, ring, decomposition):
        engine = ParallelBatchEngine(
            ring, workers=2, answerer_kwargs={"cache_bytes": 64 * 1024}
        )
        with engine:
            outcome = engine.execute(decomposition)
        schedule = outcome.report.schedule_result()
        assert schedule.source == "measured"
        assert schedule.num_servers == 2
        assert len(schedule.per_server_seconds) >= 2
        assert schedule.makespan_seconds == outcome.report.wall_seconds
        assert schedule.mean_queue_wait_seconds >= 0.0
        assert 0.0 < schedule.utilisation <= 1.0 + 1e-9

    def test_dispatch_is_longest_estimated_first(self, ring, decomposition):
        engine = ParallelBatchEngine(ring, workers=1)
        with engine:
            outcome = engine.execute(decomposition)
        # With one in-process worker the trace preserves dispatch order.
        estimates = [u.estimate for u in outcome.report.units]
        assert estimates == sorted(estimates, reverse=True)

    def test_workers_clamped_to_units(self, ring, ring_workload):
        batch = WorkloadGenerator(ring, seed=77).batch(2)
        decomposition = SearchSpaceDecomposer(ring).decompose(batch)
        engine = ParallelBatchEngine(ring, workers=16)
        with engine:
            outcome = engine.execute(decomposition)
        assert outcome.report.workers <= len(decomposition.clusters)

    def test_min_queries_per_worker_shrinks_pool(self, ring, decomposition):
        engine = ParallelBatchEngine(ring, workers=8, min_queries_per_worker=10**6)
        with engine:
            outcome = engine.execute(decomposition)
        assert outcome.report.workers == 1
        assert outcome.report.start_method == "in-process"


def _boom(payload):
    raise RuntimeError("injected worker failure")


class TestGracefulDegradation:
    def test_worker_exception_falls_back_in_process(
        self, ring, decomposition, serial_answer, monkeypatch
    ):
        import repro.parallel.worker as worker_module

        monkeypatch.setattr(worker_module, "answer_unit", _boom)
        engine = ParallelBatchEngine(
            ring, workers=2, answerer_kwargs={"cache_bytes": 64 * 1024, "order": "longest"}
        )
        with engine:
            outcome = engine.execute(decomposition, method="slc-s")
        busy_units = [c for c in decomposition.clusters if len(c)]
        assert outcome.report.fallbacks == len(busy_units)
        # No query dropped, and the fallback answers are the serial answers.
        assert answers_key(outcome.answer) == answers_key(serial_answer)

    def test_unit_timeout_falls_back_without_dropping_queries(
        self, ring, decomposition, serial_answer
    ):
        engine = ParallelBatchEngine(
            ring,
            workers=2,
            unit_timeout=0.0,
            answerer_kwargs={"cache_bytes": 64 * 1024, "order": "longest"},
        )
        with engine:
            outcome = engine.execute(decomposition, method="slc-s")
        assert answers_key(outcome.answer) == answers_key(serial_answer)

    def test_spawn_pickle_fallback_produces_identical_answers(
        self, ring, decomposition, serial_answer
    ):
        engine = ParallelBatchEngine(
            ring,
            workers=2,
            start_method="spawn",
            answerer_kwargs={"cache_bytes": 64 * 1024, "order": "longest"},
        )
        with engine:
            outcome = engine.execute(decomposition, method="slc-s")
        assert answers_key(outcome.answer) == answers_key(serial_answer)

    def test_pool_survives_consecutive_batches(self, ring, ring_workload):
        decomposer = SearchSpaceDecomposer(ring)
        engine = ParallelBatchEngine(
            ring, workers=2, answerer_kwargs={"cache_bytes": 64 * 1024}
        )
        with engine:
            for seed in (201, 202):
                batch = WorkloadGenerator(ring, seed=seed).batch(30)
                outcome = engine.execute(decomposer.decompose(batch))
                assert outcome.answer.num_queries == len(batch)

    def test_graph_version_bump_refreshes_workers(self, ring, ring_workload):
        graph = ring.copy()
        decomposer = SearchSpaceDecomposer(graph)
        batch = WorkloadGenerator(graph, seed=301).batch(25)
        engine = ParallelBatchEngine(
            graph, workers=2, answerer_kwargs={"cache_bytes": 64 * 1024}
        )
        with engine:
            engine.execute(decomposer.decompose(batch))
            # A weight epoch: every worker snapshot is now stale.
            u, v, w = next(iter(graph.edges()))
            graph.set_weight(u, v, w * 3.0)
            outcome = engine.execute(decomposer.decompose(batch))
        for q, r in outcome.answer.answers:
            truth = dijkstra(graph, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)


class TestValidation:
    def test_bad_workers(self, ring):
        with pytest.raises(ConfigurationError):
            ParallelBatchEngine(ring, workers=0)
        with pytest.raises(ConfigurationError):
            BatchProcessor(ring, workers=0)

    def test_bad_answerer_kind(self, ring):
        with pytest.raises(ConfigurationError):
            ParallelBatchEngine(ring, answerer_kind="quantum")

    def test_bad_start_method(self, ring):
        with pytest.raises(ConfigurationError):
            ParallelBatchEngine(ring, start_method="telepathy")

    def test_bad_timeout(self, ring):
        with pytest.raises(ConfigurationError):
            ParallelBatchEngine(ring, unit_timeout=-1.0)

    def test_bad_work_type(self, ring):
        engine = ParallelBatchEngine(ring, workers=1)
        with pytest.raises(ConfigurationError):
            engine.execute([1, 2, 3])

    def test_from_answerer_round_trip(self, ring):
        answerer = RegionToRegionAnswerer(ring, eta=0.07, selection="longest")
        engine = ParallelBatchEngine.from_answerer(answerer, workers=2)
        assert engine.answerer_kind == "r2r"
        assert engine.answerer_kwargs["eta"] == 0.07
        answerer2 = LocalCacheAnswerer(ring, cache_bytes=1234, eviction="lru")
        engine2 = ParallelBatchEngine.from_answerer(answerer2, workers=2)
        assert engine2.answerer_kind == "local-cache"
        assert engine2.answerer_kwargs["cache_bytes"] == 1234
        assert engine2.answerer_kwargs["eviction"] == "lru"
