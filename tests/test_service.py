"""Tests for the windowed batch query service."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.network.timeline import TrafficTimeline, congestion_snapshot
from repro.queries.arrivals import PoissonArrivals, TimedQuery
from repro.queries.query import Query, QuerySet
from repro.search.dijkstra import dijkstra
from repro.service import BatchQueryService


@pytest.fixture()
def city(ring):
    return ring.copy()


@pytest.fixture()
def arrivals(ring_workload):
    return PoissonArrivals(ring_workload, rate=60.0, seed=3).duration(4.0)


class TestRun:
    def test_all_queries_answered(self, city, arrivals):
        service = BatchQueryService(city, window_seconds=1.0)
        report = service.run(arrivals)
        assert report.total_queries == len(arrivals)
        answered = sum(
            w.answer.num_queries for w in report.windows if w.answer is not None
        )
        assert answered == len(arrivals)

    def test_answers_exact(self, city, arrivals):
        service = BatchQueryService(city, window_seconds=1.0)
        report = service.run(arrivals)
        for window in report.windows:
            if window.answer is None:
                continue
            q, r = window.answer.answers[0]
            truth = dijkstra(city, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_window_count_matches_duration(self, city, arrivals):
        service = BatchQueryService(city, window_seconds=1.0)
        report = service.run(arrivals)
        last = max(tq.arrival for tq in arrivals)
        assert len(report.windows) == int(last) + 1

    def test_report_aggregates(self, city, arrivals):
        service = BatchQueryService(city, window_seconds=1.0)
        report = service.run(arrivals)
        assert report.busy_windows > 0
        assert report.worst_window_seconds > 0.0
        assert 0.0 <= report.mean_hit_ratio <= 1.0
        assert len(report.window_costs()) == report.busy_windows

    def test_deadline_accounting(self, city, arrivals):
        # An impossible SLO: every busy window misses.
        service = BatchQueryService(city, window_seconds=1.0, deadline_seconds=1e-9)
        report = service.run(arrivals)
        assert report.deadline_misses == report.busy_windows

    def test_empty_stream(self, city):
        report = BatchQueryService(city).run([])
        assert report.windows == []
        assert report.total_queries == 0


class TestTimelineIntegration:
    def test_snapshots_fire_and_answers_track(self, city, ring_workload):
        timeline = TrafficTimeline(city, seed=2)
        timeline.schedule(2.0, congestion_snapshot(0.3), "jam")
        service = BatchQueryService(city, window_seconds=1.0, timeline=timeline)
        arrivals = PoissonArrivals(ring_workload, rate=40.0, seed=9).duration(5.0)
        report = service.run(arrivals)
        assert sum(w.timeline_events for w in report.windows) == 1
        # Post-jam answers reflect the new weights.
        late = [w for w in report.windows if w.window_index >= 2 and w.answer]
        q, r = late[-1].answer.answers[0]
        truth = dijkstra(city, q.source, q.target).distance
        assert math.isclose(r.distance, truth, rel_tol=1e-12)
        assert service.session.epochs_flushed >= 1

    def test_process_window_directly(self, city, ring_workload):
        timeline = TrafficTimeline(city, seed=2)
        service = BatchQueryService(city, timeline=timeline)
        batch = ring_workload.batch(15)
        window = service.process_window(batch, at_seconds=3.5)
        assert window.queries == 15
        assert window.answer is not None


class TestParallelService:
    def test_workers_answer_every_query_exactly(self, city, arrivals):
        with BatchQueryService(city, window_seconds=1.0, workers=2) as service:
            report = service.run(arrivals)
        answered = sum(
            w.answer.num_queries for w in report.windows if w.answer is not None
        )
        assert answered == len(arrivals)
        for window in report.windows:
            if window.answer is None:
                continue
            assert window.workers >= 1
            for q, r in window.answer.answers:
                truth = dijkstra(city, q.source, q.target).distance
                assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_busy_windows_carry_measured_schedules(self, city, arrivals):
        with BatchQueryService(city, window_seconds=1.0, workers=2) as service:
            report = service.run(arrivals)
        busy = [w for w in report.windows if w.answer is not None]
        assert busy
        for window in busy:
            assert window.schedule is not None
            assert window.schedule.source == "measured"
            assert window.schedule.makespan_seconds > 0.0
        assert 0.0 < report.mean_utilisation <= 1.0 + 1e-9

    def test_serial_service_has_no_schedule(self, city, arrivals):
        service = BatchQueryService(city, window_seconds=1.0)
        report = service.run(arrivals)
        for window in report.windows:
            assert window.workers == 1
            assert window.schedule is None

    def test_bad_workers(self, city):
        with pytest.raises(ConfigurationError):
            BatchQueryService(city, workers=-1)

    def test_workers_zero_is_serial_engine_mode(self, city, arrivals):
        with BatchQueryService(city, window_seconds=1.0, workers=0) as service:
            report = service.run(arrivals)
        assert report.total_queries == len(arrivals)
        for window in report.windows:
            if window.queries:
                assert window.schedule is not None
                assert window.schedule.num_servers == 1


class TestValidation:
    def test_bad_window(self, city):
        with pytest.raises(ConfigurationError):
            BatchQueryService(city, window_seconds=0.0)

    def test_bad_deadline(self, city):
        with pytest.raises(ConfigurationError):
            BatchQueryService(city, deadline_seconds=-1.0)

    def test_capacity_integration(self, city, arrivals):
        from repro.analysis.capacity import servers_needed

        service = BatchQueryService(city)
        report = service.run(arrivals)
        plan = servers_needed(report.window_costs(), deadline_seconds=10.0)
        assert plan.servers >= 1
