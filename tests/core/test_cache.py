"""Unit tests for the PathCache structure (Figure 5)."""

import math

import pytest

from repro.core.cache import BYTES_PER_PATH, BYTES_PER_VERTEX, PathCache, path_size_bytes
from repro.exceptions import CacheError
from repro.network.supervertex import SuperVertexMap
from repro.search.astar import a_star
from repro.search.dijkstra import dijkstra


@pytest.fixture()
def cache(ring):
    return PathCache(ring)


def shortest_path(ring, s, t):
    return a_star(ring, s, t).path


class TestInsertLookup:
    def test_exact_endpoints_hit(self, ring, cache):
        path = shortest_path(ring, 0, 100)
        pid = cache.insert(path)
        assert pid is not None
        hit = cache.lookup(0, 100)
        assert hit is not None
        assert hit.exact
        assert hit.path == path
        assert math.isclose(hit.distance, dijkstra(ring, 0, 100).distance)

    def test_subpath_hit_is_exact_shortest(self, ring, cache):
        path = shortest_path(ring, 0, 100)
        cache.insert(path)
        # Every ordered sub-pair of the cached path must hit with the true
        # shortest distance (sub-path optimality).
        for i in range(0, len(path) - 1, 3):
            for j in range(i + 1, len(path), 4):
                hit = cache.lookup(path[i], path[j])
                assert hit is not None
                truth = dijkstra(ring, path[i], path[j]).distance
                assert math.isclose(hit.distance, truth, rel_tol=1e-12)

    def test_reverse_order_is_miss(self, ring, cache):
        path = shortest_path(ring, 0, 100)
        cache.insert(path)
        # Cached paths are directed: t -> s is not answerable.
        assert cache.lookup(path[-1], path[0]) is None or path[-1] == path[0]

    def test_miss_for_uncached_pair(self, ring, cache):
        cache.insert(shortest_path(ring, 0, 100))
        assert cache.lookup(1, 2) is None

    def test_best_of_multiple_paths(self, ring, cache):
        p1 = shortest_path(ring, 0, 100)
        p2 = shortest_path(ring, 0, 60)
        cache.insert(p1)
        cache.insert(p2)
        hit = cache.lookup(0, p1[-1])
        assert hit is not None
        assert math.isclose(hit.distance, dijkstra(ring, 0, p1[-1]).distance)

    def test_short_path_not_inserted(self, ring, cache):
        assert cache.insert([5]) is None
        assert cache.insert([]) is None

    def test_hit_miss_counters(self, ring, cache):
        cache.insert(shortest_path(ring, 0, 100))
        cache.lookup(0, 100)
        cache.lookup(1, 2)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_contains_pair_does_not_touch_counters(self, ring, cache):
        cache.insert(shortest_path(ring, 0, 100))
        assert cache.contains_pair(0, 100)
        assert not cache.contains_pair(1, 2)
        assert cache.hits == 0 and cache.misses == 0


class TestCapacity:
    def test_size_accounting(self, ring):
        c = PathCache(ring)
        path = shortest_path(ring, 0, 100)
        c.insert(path)
        assert c.size_bytes == path_size_bytes(path)
        assert path_size_bytes(path) == BYTES_PER_PATH + BYTES_PER_VERTEX * len(path)

    def test_capacity_rejects_overflow(self, ring):
        path = shortest_path(ring, 0, 100)
        c = PathCache(ring, capacity_bytes=path_size_bytes(path))
        assert c.insert(path) is not None
        other = shortest_path(ring, 5, 80)
        assert c.insert(other) is None
        assert c.rejected_inserts == 1
        assert c.num_paths == 1

    def test_zero_capacity_rejects_everything(self, ring):
        c = PathCache(ring, capacity_bytes=0)
        assert c.insert(shortest_path(ring, 0, 100)) is None

    def test_negative_capacity_rejected(self, ring):
        with pytest.raises(CacheError):
            PathCache(ring, capacity_bytes=-1)

    def test_would_fit(self, ring):
        path = shortest_path(ring, 0, 100)
        c = PathCache(ring, capacity_bytes=path_size_bytes(path))
        assert c.would_fit(path)
        c.insert(path)
        assert not c.would_fit(path)

    def test_clear_resets(self, ring):
        c = PathCache(ring)
        c.insert(shortest_path(ring, 0, 100))
        c.clear()
        assert c.size_bytes == 0
        assert len(c) == 0
        assert c.lookup(0, 100) is None


class TestSuperVertices:
    def test_super_vertex_hit_flagged_inexact(self, ring):
        sm = SuperVertexMap(ring, snap_radius=1.5)
        c = PathCache(ring, super_map=sm)
        path = shortest_path(ring, 0, 100)
        c.insert(path)
        # Find a vertex co-located with a path vertex but not on the path.
        on_path = set(path)
        twin = None
        for v in range(ring.num_vertices):
            if v in on_path:
                continue
            if sm.super_of(v) in {sm.super_of(p) for p in path[1:-1]}:
                twin = v
                break
        if twin is None:
            pytest.skip("no co-located twin on this network")
        hit = c.lookup(path[0], twin)
        assert hit is not None
        assert not hit.exact

    def test_exact_match_stays_exact_with_super_map(self, ring):
        sm = SuperVertexMap(ring, snap_radius=1.5)
        c = PathCache(ring, super_map=sm)
        path = shortest_path(ring, 0, 100)
        c.insert(path)
        hit = c.lookup(0, 100)
        assert hit is not None and hit.exact


class TestPathsSnapshot:
    def test_paths_returns_copies(self, ring, cache):
        p = shortest_path(ring, 0, 100)
        cache.insert(p)
        snapshot = cache.paths()
        snapshot[0].append(-1)
        assert cache.lookup(0, 100).path == p
