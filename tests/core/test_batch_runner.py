"""Integration tests: the BatchProcessor facade runs every pipeline."""

import math

import pytest

from repro.core.batch_runner import METHODS, BatchProcessor
from repro.exceptions import ConfigurationError
from repro.search.dijkstra import dijkstra

EXACT_METHODS = ("astar", "dijkstra", "zlc", "slc-s", "slc-r", "zigzag-petal")
APPROX_METHODS = ("r2r-s", "r2r-r", "k-path", "group")


@pytest.fixture(scope="module")
def processor(ring):
    return BatchProcessor(ring, seed=1)


@pytest.fixture(scope="module")
def oracle(ring, ring_batch):
    return {
        q: dijkstra(ring, q.source, q.target).distance for q in ring_batch
    }


class TestAllMethodsRun:
    @pytest.mark.parametrize("method", METHODS)
    def test_method_answers_batch(self, processor, ring_batch, method):
        answer = processor.process(ring_batch, method)
        expected = len(ring_batch)
        if method == "gc":
            expected = len(ring_batch) - int(len(ring_batch) * 0.2)
        assert answer.num_queries == expected
        assert answer.method == method

    def test_unknown_method_rejected(self, processor, ring_batch):
        with pytest.raises(ConfigurationError):
            processor.process(ring_batch, "teleport")


class TestExactMethods:
    @pytest.mark.parametrize("method", EXACT_METHODS)
    def test_distances_match_oracle(self, processor, ring_batch, oracle, method):
        answer = processor.process(ring_batch, method)
        for q, r in answer.answers:
            assert math.isclose(r.distance, oracle[q], rel_tol=1e-12), (method, q)

    def test_gc_answers_match_oracle(self, processor, ring_batch, oracle):
        answer = processor.process(ring_batch, "gc")
        for q, r in answer.answers:
            assert math.isclose(r.distance, oracle[q], rel_tol=1e-12)


class TestApproxMethods:
    @pytest.mark.parametrize("method", APPROX_METHODS)
    def test_distances_at_least_truth(self, processor, ring_batch, oracle, method):
        answer = processor.process(ring_batch, method)
        for q, r in answer.answers:
            if math.isinf(r.distance):
                continue
            assert r.distance >= oracle[q] - 1e-9, (method, q)

    def test_r2r_error_bounded(self, processor, ring_batch, oracle):
        answer = processor.process(ring_batch, "r2r-s")
        for q, r in answer.answers:
            assert r.distance <= oracle[q] * 1.05 + 1e-9


class TestConfiguration:
    def test_explicit_cache_bytes_respected(self, ring, ring_batch):
        p = BatchProcessor(ring, cache_bytes=512)
        answer = p.process(ring_batch, "slc-s")
        assert answer.cache_bytes <= 512 * answer.num_clusters

    def test_super_snap_radius_plumbs_through(self, ring, ring_batch):
        snapped = BatchProcessor(ring, super_snap_radius=1.5).process(
            ring_batch, "slc-s"
        )
        exact = BatchProcessor(ring).process(ring_batch, "slc-s")
        assert snapped.hit_ratio >= exact.hit_ratio

    def test_methods_constant_is_complete(self, processor, ring_batch):
        for method in METHODS:
            processor.process(ring_batch[:10], method)
