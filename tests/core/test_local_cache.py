"""Unit tests for the Local Cache batch answering."""

import math

import pytest

from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.core.zigzag import ZigzagDecomposer
from repro.exceptions import ConfigurationError
from repro.search.dijkstra import dijkstra


@pytest.fixture(scope="module")
def sse_decomposition(ring, ring_batch):
    return SearchSpaceDecomposer(ring).decompose(ring_batch)


class TestCorrectness:
    def test_all_queries_answered(self, ring, ring_batch, sse_decomposition):
        answer = LocalCacheAnswerer(ring).answer(sse_decomposition)
        assert answer.num_queries == len(ring_batch)

    def test_all_answers_exact_shortest(self, ring, sse_decomposition):
        answer = LocalCacheAnswerer(ring).answer(sse_decomposition)
        for q, r in answer.answers:
            assert r.exact
            truth = dijkstra(ring, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_zigzag_decomposition_also_exact(self, ring, ring_batch):
        d = ZigzagDecomposer(ring).decompose(ring_batch)
        answer = LocalCacheAnswerer(ring).answer(d, method="zlc")
        assert answer.method == "zlc"
        for q, r in answer.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_random_order_exact_too(self, ring, sse_decomposition):
        answer = LocalCacheAnswerer(ring, order="random", seed=3).answer(
            sse_decomposition
        )
        for q, r in answer.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)


class TestCacheBehaviour:
    def test_hits_are_counted(self, ring, sse_decomposition):
        answer = LocalCacheAnswerer(ring).answer(sse_decomposition)
        assert answer.cache_hits + answer.cache_misses == answer.num_queries
        assert 0.0 <= answer.hit_ratio <= 1.0

    def test_cache_hits_cost_zero_vnn(self, ring, sse_decomposition):
        answer = LocalCacheAnswerer(ring).answer(sse_decomposition)
        hits = [r for _, r in answer.answers if r.visited == 0 and r.path]
        assert len(hits) >= answer.cache_hits

    def test_longest_first_ordering(self, ring, sse_decomposition):
        answer = LocalCacheAnswerer(ring, order="longest").answer(sse_decomposition)
        # Within the first cluster, processed lengths must be non-increasing.
        first = sse_decomposition.clusters[0]
        n = len(first)
        lengths = [
            ring.euclidean(q.source, q.target) for q, _ in answer.answers[:n]
        ]
        assert lengths == sorted(lengths, reverse=True)

    def test_budget_limits_cache(self, ring, sse_decomposition):
        tiny = LocalCacheAnswerer(ring, cache_bytes=256).answer(sse_decomposition)
        big = LocalCacheAnswerer(ring, cache_bytes=10**7).answer(sse_decomposition)
        assert tiny.cache_bytes <= 256 * len(sse_decomposition.clusters)
        assert big.hit_ratio >= tiny.hit_ratio

    def test_visited_totals_accumulate(self, ring, sse_decomposition):
        answer = LocalCacheAnswerer(ring).answer(sse_decomposition)
        assert answer.visited == sum(r.visited for _, r in answer.answers)

    def test_num_clusters_recorded(self, ring, sse_decomposition):
        answer = LocalCacheAnswerer(ring).answer(sse_decomposition)
        assert answer.num_clusters == len(sse_decomposition.clusters)

    def test_decompose_seconds_propagated(self, ring, sse_decomposition):
        answer = LocalCacheAnswerer(ring).answer(sse_decomposition)
        assert answer.decompose_seconds == sse_decomposition.elapsed_seconds
        assert answer.total_seconds >= answer.answer_seconds


class TestSuperVertices:
    def test_super_vertex_raises_hit_ratio(self, ring, sse_decomposition):
        exact = LocalCacheAnswerer(ring).answer(sse_decomposition)
        snapped = LocalCacheAnswerer(ring, super_snap_radius=1.5).answer(
            sse_decomposition
        )
        assert snapped.hit_ratio >= exact.hit_ratio

    def test_super_vertex_answers_are_bounded(self, ring, sse_decomposition):
        """Snapped answers may be inexact but must stay near the truth."""
        snapped = LocalCacheAnswerer(ring, super_snap_radius=1.0).answer(
            sse_decomposition
        )
        for q, r in snapped.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            if r.exact:
                assert math.isclose(r.distance, truth, rel_tol=1e-12)
            else:
                # Both endpoints moved by at most the snap radius along
                # cached paths; allow a generous but finite tolerance.
                assert abs(r.distance - truth) <= 8.0


class TestValidation:
    def test_bad_order_rejected(self, ring):
        with pytest.raises(ConfigurationError):
            LocalCacheAnswerer(ring, order="sorted?")

    def test_given_order_keeps_decomposition_order(self, ring, sse_decomposition):
        answer = LocalCacheAnswerer(ring, order="given").answer(sse_decomposition)
        expected = [q for c in sse_decomposition for q in c.queries]
        assert [q for q, _ in answer.answers] == expected
