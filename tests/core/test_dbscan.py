"""Unit tests for the DBSCAN strawman decomposition."""

import pytest

from repro.core.dbscan import NOISE, DBSCANDecomposer, angular_spread, dbscan
from repro.core.zigzag import ZigzagDecomposer
from repro.exceptions import ConfigurationError
from repro.queries.query import Query, QuerySet


class TestDBSCAN:
    def test_two_blobs(self):
        pts = [(0.0, 0.0), (0.1, 0.0), (0.0, 0.1), (5.0, 5.0), (5.1, 5.0), (5.0, 5.1)]
        labels = dbscan(pts, eps=0.5, min_points=3)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_noise_points(self):
        pts = [(0.0, 0.0), (0.1, 0.0), (0.0, 0.1), (50.0, 50.0)]
        labels = dbscan(pts, eps=0.5, min_points=3)
        assert labels[3] == NOISE

    def test_border_point_joins_cluster(self):
        # A point within eps of a core point but itself not core.
        pts = [(0.0, 0.0), (0.1, 0.0), (0.0, 0.1), (0.55, 0.0)]
        labels = dbscan(pts, eps=0.5, min_points=3)
        assert labels[3] == labels[0]

    def test_min_points_one_everything_clusters(self):
        pts = [(0.0, 0.0), (10.0, 10.0)]
        labels = dbscan(pts, eps=0.5, min_points=1)
        assert NOISE not in labels
        assert labels[0] != labels[1]

    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            dbscan([], eps=0.0)
        with pytest.raises(ConfigurationError):
            dbscan([], eps=1.0, min_points=0)

    def test_empty_input(self):
        assert dbscan([], eps=1.0) == []

    def test_labels_deterministic(self):
        pts = [(float(i % 7), float(i % 5)) for i in range(40)]
        assert dbscan(pts, 1.5) == dbscan(pts, 1.5)


class TestDBSCANDecomposer:
    def test_partition(self, ring, ring_batch):
        d = DBSCANDecomposer(ring, eps=5.0).decompose(ring_batch)
        assert d.num_queries == len(ring_batch)

    def test_duplicates_kept(self, ring):
        qs = QuerySet.from_pairs([(0, 100), (0, 100)])
        d = DBSCANDecomposer(ring, eps=5.0).decompose(qs)
        assert d.num_queries == 2

    def test_noise_endpoints_stay_separate(self, ring):
        # Two queries with far-apart everything: min_points high forces noise.
        qs = QuerySet.from_pairs([(0, 100), (50, 10)])
        d = DBSCANDecomposer(ring, eps=0.001, min_points=5).decompose(qs)
        assert len(d) == 2

    def test_invalid_eps(self, ring):
        with pytest.raises(ConfigurationError):
            DBSCANDecomposer(ring, eps=0.0)

    def test_angular_spread_wider_than_ad_petals(self, ring, ring_workload):
        """The paper's argument: density clusters ignore direction, so
        their angular spread blows past the AD petals' delta bound."""
        batch = ring_workload.batch(120)
        ad = ZigzagDecomposer(ring, absorb_singletons=False).decompose(batch)
        db = DBSCANDecomposer(ring, eps=8.0, min_points=3).decompose(batch)

        def worst_multi(decomposition):
            spreads = [
                angular_spread(ring, c) for c in decomposition if len(c) > 1
            ]
            return max(spreads) if spreads else 0.0

        # DBSCAN clusters can be arbitrarily wide; petals are delta-bounded
        # per side (the zigzag union can widen them, hence the slack).
        assert worst_multi(db) >= worst_multi(ad) * 0.5

    def test_angular_spread_helper(self, ring):
        cluster_queries = [Query(0, 100), Query(0, 101)]
        from repro.core.clusters import QueryCluster

        c = QueryCluster(queries=cluster_queries)
        assert 0.0 <= angular_spread(ring, c) <= 180.0
        single = QueryCluster(queries=[Query(0, 100)])
        assert angular_spread(ring, single) == 0.0
