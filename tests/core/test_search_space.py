"""Unit tests for the Search-Space Estimation decomposition."""

import pytest

from repro.core.search_space import (
    SearchSpaceDecomposer,
    SearchSpaceOracle,
    overlap_coefficient,
)
from repro.exceptions import ConfigurationError
from repro.queries.query import Query, QuerySet


@pytest.fixture(scope="module")
def oracle(ring):
    return SearchSpaceOracle(ring)


class TestOracle:
    def test_covered_cells_contain_endpoints(self, ring, oracle):
        q = Query(0, 100)
        est = oracle.estimate(q)
        assert oracle.grid.cell_of_vertex(q.source) in est.covered_cells
        assert oracle.grid.cell_of_vertex(q.target) in est.covered_cells

    def test_theta_in_range(self, ring, oracle, ring_batch):
        for q in list(ring_batch)[:20]:
            est = oracle.estimate(q)
            assert 0.0 <= est.theta <= 45.0

    def test_bearing_in_range(self, oracle, ring_batch):
        for q in list(ring_batch)[:20]:
            assert 0.0 <= oracle.estimate(q).bearing < 360.0

    def test_ellipse_focus_is_source(self, ring, oracle):
        q = Query(3, 90)
        est = oracle.estimate(q)
        assert est.ellipse.f1 == ring.coord(3)

    def test_longer_query_covers_more_cells(self, ring, oracle):
        short = min(
            (Query(0, t) for t in range(1, 40)),
            key=lambda q: ring.euclidean(q.source, q.target),
        )
        long = max(
            (Query(0, t) for t in range(40, 140)),
            key=lambda q: ring.euclidean(q.source, q.target),
        )
        assert len(oracle.estimate(long).covered_cells) >= len(
            oracle.estimate(short).covered_cells
        )


class TestOverlapCoefficient:
    def test_identical_sets(self):
        assert overlap_coefficient({(0, 0), (1, 1)}, {(0, 0), (1, 1)}) == 1.0

    def test_subset_is_one(self):
        assert overlap_coefficient({(0, 0)}, {(0, 0), (1, 1)}) == 1.0

    def test_disjoint_zero(self):
        assert overlap_coefficient({(0, 0)}, {(1, 1)}) == 0.0

    def test_empty_zero(self):
        assert overlap_coefficient(set(), {(0, 0)}) == 0.0

    def test_partial(self):
        a = {(0, 0), (1, 1)}
        b = {(1, 1), (2, 2), (3, 3)}
        assert overlap_coefficient(a, b) == pytest.approx(0.5)


class TestDecomposer:
    def test_partition(self, ring, ring_batch):
        d = SearchSpaceDecomposer(ring).decompose(ring_batch)
        assert d.num_queries == len(ring_batch)

    def test_handles_duplicates(self, ring):
        qs = QuerySet.from_pairs([(0, 100), (0, 100), (1, 99)])
        d = SearchSpaceDecomposer(ring).decompose(qs)
        assert d.num_queries == 3

    def test_empty(self, ring):
        assert len(SearchSpaceDecomposer(ring).decompose(QuerySet())) == 0

    def test_members_share_seed_space(self, ring, ring_batch):
        """Members' endpoints must lie in the cluster's covered cells.

        Holds before and after merging: merging unions the cell sets.
        """
        d = SearchSpaceDecomposer(ring).decompose(ring_batch.deduplicated())
        grid = SearchSpaceOracle(ring).grid
        for cluster in d:
            for q in cluster.queries:
                assert grid.cell_of_vertex(q.source) in cluster.covered_cells
                assert grid.cell_of_vertex(q.target) in cluster.covered_cells

    def test_merge_reduces_or_keeps_cluster_count(self, ring, ring_batch):
        strict = SearchSpaceDecomposer(ring, merge_threshold=1.0).decompose(ring_batch)
        loose = SearchSpaceDecomposer(ring, merge_threshold=0.2).decompose(ring_batch)
        assert len(loose) <= len(strict)

    def test_clusters_have_direction_and_cells(self, ring, ring_batch):
        d = SearchSpaceDecomposer(ring).decompose(ring_batch)
        for cluster in d:
            assert cluster.direction is not None
            assert cluster.covered_cells

    def test_deterministic(self, ring, ring_batch):
        a = SearchSpaceDecomposer(ring).decompose(ring_batch)
        b = SearchSpaceDecomposer(ring).decompose(ring_batch)
        assert [c.queries for c in a] == [c.queries for c in b]

    def test_invalid_parameters(self, ring):
        with pytest.raises(ConfigurationError):
            SearchSpaceDecomposer(ring, delta=0.0)
        with pytest.raises(ConfigurationError):
            SearchSpaceDecomposer(ring, merge_threshold=0.0)
        with pytest.raises(ConfigurationError):
            SearchSpaceDecomposer(ring, merge_threshold=1.5)

    def test_shared_grid_reused(self, ring, ring_batch):
        from repro.network.grid import GridIndex

        grid = GridIndex(ring, levels=5)
        d = SearchSpaceDecomposer(ring, grid=grid)
        assert d.oracle.grid is grid
        d.decompose(ring_batch)
