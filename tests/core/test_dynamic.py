"""Unit tests for the dynamic batch session (Section V-A3)."""

import math

import pytest

from repro.core.dynamic import DynamicBatchSession
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.exceptions import ConfigurationError
from repro.search.dijkstra import dijkstra


def make_session(graph, similarity_threshold=0.3):
    return DynamicBatchSession(
        graph,
        decomposer=SearchSpaceDecomposer(graph),
        answerer=LocalCacheAnswerer(graph, cache_bytes=10**6),
        similarity_threshold=similarity_threshold,
    )


@pytest.fixture()
def mutable_ring(ring):
    return ring.copy()


class TestCorrectness:
    def test_all_batches_answered_exactly(self, mutable_ring, ring_workload):
        session = make_session(mutable_ring)
        for batch in ring_workload.batch_stream(2, 30):
            answer = session.process_batch(batch)
            assert answer.num_queries == len(batch)
            for q, r in answer.answers:
                truth = dijkstra(mutable_ring, q.source, q.target).distance
                assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_correct_after_weight_change(self, mutable_ring, ring_workload):
        session = make_session(mutable_ring)
        batch1 = ring_workload.batch(30)
        session.process_batch(batch1)
        # Traffic jam: double every weight (a new snapshot).
        mutable_ring.scale_weights(2.0)
        batch2 = ring_workload.batch(30)
        answer = session.process_batch(batch2)
        for q, r in answer.answers:
            truth = dijkstra(mutable_ring, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)


class TestCacheLifecycle:
    def test_caches_created_on_first_batch(self, mutable_ring, ring_workload):
        session = make_session(mutable_ring)
        session.process_batch(ring_workload.batch(30))
        assert session.caches_created > 0
        assert session.live_cache_count == session.caches_created

    def test_similar_batches_reuse_caches(self, mutable_ring, ring_workload):
        session = make_session(mutable_ring, similarity_threshold=0.2)
        batch = ring_workload.batch(40)
        session.process_batch(batch)
        # The same batch again: footprints are identical, reuse must happen.
        session.process_batch(batch)
        assert session.caches_reused > 0

    def test_reuse_improves_hit_ratio(self, mutable_ring, ring_workload):
        session = make_session(mutable_ring, similarity_threshold=0.2)
        batch = ring_workload.batch(40)
        first = session.process_batch(batch)
        second = session.process_batch(batch)
        assert second.hit_ratio >= first.hit_ratio

    def test_weight_change_flushes_caches(self, mutable_ring, ring_workload):
        session = make_session(mutable_ring)
        session.process_batch(ring_workload.batch(30))
        created_before = session.caches_created
        mutable_ring.scale_weights(1.5)
        session.process_batch(ring_workload.batch(30))
        assert session.epochs_flushed == 1
        assert session.caches_created > created_before

    def test_no_flush_within_epoch(self, mutable_ring, ring_workload):
        session = make_session(mutable_ring)
        session.process_batch(ring_workload.batch(20))
        session.process_batch(ring_workload.batch(20))
        assert session.epochs_flushed == 0


class TestValidation:
    def test_bad_threshold(self, mutable_ring):
        with pytest.raises(ConfigurationError):
            DynamicBatchSession(
                mutable_ring,
                decomposer=SearchSpaceDecomposer(mutable_ring),
                answerer=LocalCacheAnswerer(mutable_ring),
                similarity_threshold=0.0,
            )
