"""Unit tests for the eta-approximation maths (Section IV-C2)."""

import math

import pytest

from repro.core.wspd import (
    EtaBound,
    approximation_upper_bound,
    cocluster_radius,
    error_from_separation,
    guaranteed_radius,
    region_radius,
    relative_error,
    separation_factor,
)
from repro.exceptions import ConfigurationError


class TestSeparation:
    def test_paper_value(self):
        # eta = 0.05 -> s = 4/0.05 + 2 = 82.
        assert separation_factor(0.05) == pytest.approx(82.0)

    def test_roundtrip(self):
        for eta in (0.01, 0.05, 0.2, 0.5):
            assert error_from_separation(separation_factor(eta)) == pytest.approx(eta)

    def test_invalid_eta(self):
        for eta in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ConfigurationError):
                separation_factor(eta)

    def test_invalid_separation(self):
        with pytest.raises(ConfigurationError):
            error_from_separation(2.0)


class TestRadii:
    def test_guaranteed_radius_formula(self):
        eta, d = 0.05, 100.0
        assert guaranteed_radius(eta, d) == pytest.approx(eta * d / (8 + 4 * eta))

    def test_region_radius_is_double(self):
        assert region_radius(0.05, 100.0) == pytest.approx(
            2 * guaranteed_radius(0.05, 100.0)
        )

    def test_radius_grows_with_distance(self):
        assert guaranteed_radius(0.05, 200.0) > guaranteed_radius(0.05, 100.0)

    def test_radius_grows_with_eta(self):
        assert guaranteed_radius(0.1, 100.0) > guaranteed_radius(0.05, 100.0)

    def test_zero_distance(self):
        assert guaranteed_radius(0.05, 0.0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            guaranteed_radius(0.05, -1.0)

    def test_cocluster_radius_applies_detour(self):
        base = guaranteed_radius(0.05, 100.0)
        assert cocluster_radius(0.05, 100.0) == pytest.approx(1.2 * base)
        assert cocluster_radius(0.05, 100.0, detour_ratio=1.0) == pytest.approx(base)

    def test_detour_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            cocluster_radius(0.05, 100.0, detour_ratio=0.9)


class TestErrorBoundSoundness:
    def test_worst_case_three_leg_error_within_eta(self):
        """The algebra of Eqs. 9-13: detouring via representatives u*, v*
        at distance <= r from the endpoints costs at most eta relative."""
        eta = 0.05
        d_rep = 100.0
        r = guaranteed_radius(eta, d_rep)
        # Worst case: both legs at the full radius 2r (Theorem 1's region),
        # true distance at its smallest compatible value d_rep - 4r.
        approx = 2 * r + d_rep + 2 * r
        true_lower = d_rep - 4 * r
        assert (approx - true_lower) / true_lower <= eta + 1e-9

    def test_upper_bound_helper(self):
        assert approximation_upper_bound(0.05, 100.0) == pytest.approx(105.0)


class TestRelativeError:
    def test_zero_for_exact(self):
        assert relative_error(10.0, 10.0) == 0.0

    def test_positive_error(self):
        assert relative_error(100.0, 105.0) == pytest.approx(0.05)

    def test_zero_exact_zero_approx(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_zero_exact_positive_approx(self):
        assert math.isinf(relative_error(0.0, 1.0))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_error(-1.0, 1.0)


class TestEtaBound:
    def test_bundle(self):
        b = EtaBound(0.05)
        assert b.separation == pytest.approx(82.0)
        assert b.r_star(100.0) == pytest.approx(guaranteed_radius(0.05, 100.0))
        assert b.region(100.0) == pytest.approx(region_radius(0.05, 100.0))
        assert b.cluster_radius(100.0) == pytest.approx(cocluster_radius(0.05, 100.0))
