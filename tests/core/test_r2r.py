"""Unit tests for the error-bounded Region-to-Region algorithm."""

import math

import pytest

from repro.core.coclustering import CoClusteringDecomposer
from repro.core.r2r import RegionToRegionAnswerer
from repro.exceptions import ConfigurationError
from repro.queries.workload import band_for_network
from repro.search.dijkstra import dijkstra
from tests.conftest import assert_valid_path

ETA = 0.05


@pytest.fixture(scope="module")
def long_batch(ring, ring_workload):
    lo, hi = band_for_network(ring, "r2r")
    return ring_workload.batch(60, min_dist=lo, max_dist=hi)


@pytest.fixture(scope="module")
def decomposition(ring, long_batch):
    return CoClusteringDecomposer(ring, eta=ETA).decompose(long_batch)


@pytest.fixture(scope="module")
def answer(ring, decomposition):
    return RegionToRegionAnswerer(ring, eta=ETA, selection="longest").answer(
        decomposition
    )


class TestErrorBound:
    def test_every_answer_within_eta(self, ring, answer):
        for q, r in answer.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            assert r.distance >= truth - 1e-9  # never below the true optimum
            assert r.distance <= truth * (1 + ETA) + 1e-9

    def test_random_selection_also_bounded(self, ring, decomposition):
        ans = RegionToRegionAnswerer(ring, eta=ETA, selection="random", seed=5).answer(
            decomposition
        )
        for q, r in ans.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            assert r.distance <= truth * (1 + ETA) + 1e-9

    def test_tighter_eta_tighter_answers(self, ring, decomposition, long_batch):
        tight_d = CoClusteringDecomposer(ring, eta=0.01).decompose(long_batch)
        tight = RegionToRegionAnswerer(ring, eta=0.01).answer(tight_d)
        for q, r in tight.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            assert r.distance <= truth * 1.01 + 1e-9


class TestPaths:
    def test_approximate_paths_are_realisable(self, ring, answer):
        """Every reported path must be a genuine walk of the right length."""
        for q, r in answer.answers:
            if not r.found or not r.path:
                continue
            assert_valid_path(ring, r.path, q.source, q.target, r.distance, tol=1e-6)

    def test_representatives_answered_exactly(self, ring, answer):
        exact = [(q, r) for q, r in answer.answers if r.exact]
        assert exact  # at least one representative per cluster
        for q, r in exact:
            truth = dijkstra(ring, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_approximate_answers_flagged(self, answer):
        flags = {r.exact for _, r in answer.answers}
        assert True in flags  # representatives

    def test_paths_optional(self, ring, decomposition):
        ans = RegionToRegionAnswerer(ring, eta=ETA, build_paths=False).answer(
            decomposition
        )
        approx = [r for _, r in ans.answers if not r.exact]
        assert all(r.path == [] for r in approx)


class TestAccounting:
    def test_all_queries_answered(self, answer, long_batch):
        assert answer.num_queries == len(long_batch)

    def test_longest_representative_picked_first(self, ring, decomposition):
        cluster = max(decomposition.clusters, key=len)
        answerer = RegionToRegionAnswerer(ring, eta=ETA, selection="longest")
        import random

        rep = answerer._pick_representative(list(cluster.queries), random.Random(0))
        longest = max(
            cluster.queries, key=lambda q: ring.euclidean(q.source, q.target)
        )
        assert ring.euclidean(rep.source, rep.target) == pytest.approx(
            ring.euclidean(longest.source, longest.target)
        )

    def test_visited_positive(self, answer):
        assert answer.visited > 0

    def test_fewer_searches_than_astar_baseline(self, ring, decomposition, long_batch):
        """R2R's raison d'etre: less work than answering each query alone."""
        multi = [c for c in decomposition.clusters if len(c) > 1]
        if not multi:
            pytest.skip("decomposition produced only singletons at this scale")
        ans = RegionToRegionAnswerer(ring, eta=ETA).answer(decomposition)
        astar_visited = sum(
            dijkstra(ring, q.source, q.target).visited for q in long_batch
        )
        assert ans.visited < astar_visited * 2  # bounded even with ball overhead


class TestValidation:
    def test_bad_selection(self, ring):
        with pytest.raises(ConfigurationError):
            RegionToRegionAnswerer(ring, selection="best")

    def test_bad_eta(self, ring):
        with pytest.raises(ConfigurationError):
            RegionToRegionAnswerer(ring, eta=0.0)

    def test_duplicates_answered_per_occurrence(self, ring):
        from repro.queries.query import QuerySet

        qs = QuerySet.from_pairs([(0, 100), (0, 100)])
        d = CoClusteringDecomposer(ring, eta=ETA).decompose(qs)
        ans = RegionToRegionAnswerer(ring, eta=ETA).answer(d)
        assert ans.num_queries == 2
