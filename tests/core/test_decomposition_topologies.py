"""Decomposition methods across network topologies.

The headline tests run on the ring-radial city; these re-verify the
invariants on a Manhattan grid and an irregular Delaunay network, where
road directions, vertex densities and detour factors all differ.
"""

import math

import pytest

from repro.core.coclustering import CoClusteringDecomposer
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.r2r import RegionToRegionAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.core.zigzag import ZigzagDecomposer
from repro.network.generators import grid_city, random_geometric_city
from repro.queries.workload import WorkloadGenerator
from repro.search.dijkstra import dijkstra

TOPOLOGIES = {
    "manhattan": lambda: grid_city(8, 8, spacing=2.0, seed=33),
    "delaunay": lambda: random_geometric_city(120, side=30.0, seed=33),
}


@pytest.fixture(scope="module", params=sorted(TOPOLOGIES), ids=str)
def topo(request):
    graph = TOPOLOGIES[request.param]()
    workload = WorkloadGenerator(graph, seed=2)
    return graph, workload.batch(100)


class TestDecompositionInvariants:
    def test_zigzag_partition(self, topo):
        graph, batch = topo
        d = ZigzagDecomposer(graph).decompose(batch)
        assert d.num_queries == len(batch)

    def test_sse_partition_and_membership(self, topo):
        graph, batch = topo
        d = SearchSpaceDecomposer(graph).decompose(batch)
        assert d.num_queries == len(batch)
        grid = SearchSpaceDecomposer(graph).oracle.grid
        for cluster in d:
            for q in cluster.queries:
                assert grid.cell_of_vertex(q.source) in cluster.covered_cells
                assert grid.cell_of_vertex(q.target) in cluster.covered_cells

    def test_cocluster_radius_invariant(self, topo):
        graph, batch = topo
        d = CoClusteringDecomposer(graph, eta=0.05).decompose(batch)
        for cluster in d:
            for q in cluster.queries:
                assert (
                    graph.euclidean(q.source, cluster.center.source)
                    <= cluster.radius + 1e-9
                )


class TestAnsweringInvariants:
    def test_local_cache_exact(self, topo):
        graph, batch = topo
        d = SearchSpaceDecomposer(graph).decompose(batch)
        answer = LocalCacheAnswerer(graph, 10**6).answer(d)
        for q, r in answer.answers:
            truth = dijkstra(graph, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_r2r_bounded(self, topo):
        graph, batch = topo
        d = CoClusteringDecomposer(graph, eta=0.05).decompose(batch)
        answer = RegionToRegionAnswerer(graph, eta=0.05).answer(d)
        for q, r in answer.answers:
            truth = dijkstra(graph, q.source, q.target).distance
            assert r.distance <= truth * 1.05 + 1e-9

    def test_indexes_exact(self, topo):
        graph, batch = topo
        from repro.index.arcflags import ArcFlags
        from repro.index.pll import PrunedLandmarkLabeling

        af = ArcFlags(graph, cells_per_side=3)
        pll = PrunedLandmarkLabeling(graph)
        for q in list(batch)[:15]:
            truth = dijkstra(graph, q.source, q.target).distance
            assert math.isclose(af.distance(q.source, q.target), truth, rel_tol=1e-9)
            assert math.isclose(pll.distance(q.source, q.target), truth, rel_tol=1e-9)
