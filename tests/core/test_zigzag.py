"""Unit tests for the Zigzag decomposition."""

import pytest

from repro.core.zigzag import ZigzagDecomposer, ad_decompose
from repro.exceptions import ConfigurationError
from repro.network.spatial import angular_difference, bearing_angle
from repro.queries.query import Query, QuerySet


class TestADDecompose:
    def test_every_query_in_exactly_one_petal(self, ring, ring_batch):
        groups = ring_batch.deduplicated().by_source()
        source, queries = max(groups.items(), key=lambda kv: len(kv[1]))
        petals = ad_decompose(ring, source, queries, delta=30.0, anchor_is_source=True)
        flat = [q for petal in petals for q in petal]
        assert sorted(flat) == sorted(queries)

    def test_petal_angle_within_delta(self, ring, ring_batch):
        delta = 30.0
        groups = ring_batch.deduplicated().by_source()
        source, queries = max(groups.items(), key=lambda kv: len(kv[1]))
        ax, ay = ring.coord(source)
        for petal in ad_decompose(ring, source, queries, delta, anchor_is_source=True):
            bearings = [
                bearing_angle(ring.xs[q.target] - ax, ring.ys[q.target] - ay)
                for q in petal
            ]
            # Every pair within a petal differs by at most delta (each is
            # within delta/2 of the seed axis).
            for a in bearings:
                for b in bearings:
                    assert angular_difference(a, b) <= delta + 1e-9

    def test_seed_is_farthest(self, ring):
        source = 0
        queries = [Query(source, t) for t in (10, 50, 100)]
        petals = ad_decompose(ring, source, queries, 30.0, anchor_is_source=True)
        first_seed = petals[0][0]
        assert ring.euclidean(source, first_seed.target) == max(
            ring.euclidean(source, t) for t in (10, 50, 100)
        )

    def test_anchor_is_target_mode(self, ring):
        target = 5
        queries = [Query(s, target) for s in (10, 50, 100)]
        petals = ad_decompose(ring, target, queries, 30.0, anchor_is_source=False)
        assert sorted(q for petal in petals for q in petal) == sorted(queries)

    def test_wide_delta_single_petal(self, ring):
        queries = [Query(0, t) for t in (10, 50, 100, 130)]
        petals = ad_decompose(ring, 0, queries, 360.0, anchor_is_source=True)
        assert len(petals) == 1

    def test_invalid_delta(self, ring):
        with pytest.raises(ConfigurationError):
            ad_decompose(ring, 0, [], 0.0, True)


class TestZigzagDecomposer:
    def test_partition(self, ring, ring_batch):
        d = ZigzagDecomposer(ring).decompose(ring_batch)
        d.validate(ring_batch)  # idempotent re-check
        assert d.num_queries == len(ring_batch)

    def test_handles_duplicates(self, ring):
        qs = QuerySet.from_pairs([(0, 10), (0, 10), (5, 50)])
        d = ZigzagDecomposer(ring).decompose(qs)
        assert d.num_queries == 3

    def test_merges_shared_endpoint_queries(self, ring):
        # A clean M-N block: sources 1 and 2 are adjacent ring slots, so
        # seen from the far targets they fall in the same backward petal.
        qs = QuerySet.from_pairs([(1, 100), (1, 101), (2, 100), (2, 101)])
        d = ZigzagDecomposer(ring, absorb_singletons=False).decompose(qs)
        # The zigzag merge should unite the block into one cluster.
        assert len(d) == 1

    def test_absorbs_singleton_inside_hulls(self, ring):
        qs = QuerySet.from_pairs(
            [(0, 100), (0, 101), (1, 100), (2, 101), (1, 99)]
        )
        with_abs = ZigzagDecomposer(ring, absorb_singletons=True).decompose(qs)
        without = ZigzagDecomposer(ring, absorb_singletons=False).decompose(qs)
        assert len(with_abs) <= len(without)
        with_abs.validate(qs)

    def test_empty_query_set(self, ring):
        d = ZigzagDecomposer(ring).decompose(QuerySet())
        assert len(d) == 0
        assert d.num_queries == 0

    def test_single_query(self, ring):
        d = ZigzagDecomposer(ring).decompose(QuerySet([Query(0, 10)]))
        assert len(d) == 1
        assert d.clusters[0].queries == [Query(0, 10)]

    def test_method_and_elapsed_recorded(self, ring, ring_batch):
        d = ZigzagDecomposer(ring).decompose(ring_batch)
        assert d.method == "zigzag"
        assert d.elapsed_seconds >= 0.0

    def test_bad_delta_rejected(self, ring):
        with pytest.raises(ConfigurationError):
            ZigzagDecomposer(ring, delta=-5.0)

    def test_deterministic(self, ring, ring_batch):
        a = ZigzagDecomposer(ring).decompose(ring_batch)
        b = ZigzagDecomposer(ring).decompose(ring_batch)
        assert [c.queries for c in a] == [c.queries for c in b]

    def test_smaller_delta_no_fewer_clusters(self, ring, ring_batch):
        wide = ZigzagDecomposer(ring, delta=120.0).decompose(ring_batch)
        narrow = ZigzagDecomposer(ring, delta=10.0).decompose(ring_batch)
        assert len(narrow) >= len(wide) * 0.8  # clusters shrink as delta does
