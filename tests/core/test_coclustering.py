"""Unit tests for the Coherence-Aware Co-Clustering decomposition."""

import pytest

from repro.core.coclustering import CoClusteringDecomposer
from repro.core.wspd import cocluster_radius
from repro.exceptions import ConfigurationError
from repro.queries.query import Query, QuerySet


class TestAlgorithm1:
    def test_partition(self, ring, ring_batch):
        d = CoClusteringDecomposer(ring).decompose(ring_batch)
        assert d.num_queries == len(ring_batch)

    def test_members_within_radius_of_center(self, ring, ring_batch):
        d = CoClusteringDecomposer(ring).decompose(ring_batch)
        for cluster in d:
            center = cluster.center
            assert center is not None and cluster.radius is not None
            for q in cluster.queries:
                assert ring.euclidean(q.source, center.source) <= cluster.radius + 1e-9
                assert ring.euclidean(q.target, center.target) <= cluster.radius + 1e-9

    def test_first_member_is_center(self, ring, ring_batch):
        d = CoClusteringDecomposer(ring).decompose(ring_batch)
        for cluster in d:
            assert cluster.queries[0] == cluster.center

    def test_radius_formula(self, ring):
        eta = 0.05
        d = CoClusteringDecomposer(ring, eta=eta).decompose(
            QuerySet([Query(0, 100)])
        )
        cluster = d.clusters[0]
        expected = cocluster_radius(eta, ring.euclidean(0, 100))
        assert cluster.radius == pytest.approx(expected)

    def test_larger_eta_fewer_clusters(self, ring, ring_batch):
        tight = CoClusteringDecomposer(ring, eta=0.01).decompose(ring_batch)
        loose = CoClusteringDecomposer(ring, eta=0.5).decompose(ring_batch)
        assert len(loose) <= len(tight)

    def test_clusters_are_dumbbells(self, ring, ring_batch):
        d = CoClusteringDecomposer(ring).decompose(ring_batch)
        assert all(c.kind == "dumbbell" for c in d)

    def test_empty(self, ring):
        assert len(CoClusteringDecomposer(ring).decompose(QuerySet())) == 0

    def test_duplicates_join_same_cluster(self, ring):
        qs = QuerySet.from_pairs([(0, 100), (0, 100)])
        d = CoClusteringDecomposer(ring).decompose(qs)
        assert len(d) == 1
        assert len(d.clusters[0]) == 2

    def test_invalid_eta(self, ring):
        for eta in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigurationError):
                CoClusteringDecomposer(ring, eta=eta)


class TestAcceleration:
    def test_accelerated_equals_linear(self, ring, ring_batch):
        linear = CoClusteringDecomposer(ring, accelerate=False).decompose(ring_batch)
        fast = CoClusteringDecomposer(ring, accelerate=True).decompose(ring_batch)
        assert [c.queries for c in linear] == [c.queries for c in fast]
        assert [c.center for c in linear] == [c.center for c in fast]

    def test_accelerated_equals_linear_large_eta(self, ring, ring_batch):
        # Large radii exercise the grid rebuild path.
        linear = CoClusteringDecomposer(ring, eta=0.6, accelerate=False).decompose(
            ring_batch
        )
        fast = CoClusteringDecomposer(ring, eta=0.6, accelerate=True).decompose(
            ring_batch
        )
        assert [c.queries for c in linear] == [c.queries for c in fast]

    def test_accelerated_equals_linear_on_grid(self, grid6, grid_batch):
        linear = CoClusteringDecomposer(grid6, accelerate=False).decompose(grid_batch)
        fast = CoClusteringDecomposer(grid6, accelerate=True).decompose(grid_batch)
        assert [c.queries for c in linear] == [c.queries for c in fast]

    def test_radius_for_helper(self, ring):
        d = CoClusteringDecomposer(ring, eta=0.05)
        q = Query(0, 100)
        assert d.radius_for(q) == pytest.approx(
            cocluster_radius(0.05, ring.euclidean(0, 100))
        )
