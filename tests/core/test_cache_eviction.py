"""Unit tests for the cache eviction policies (the [30] extension)."""

import math

import pytest

from repro.core.cache import PathCache, path_size_bytes
from repro.exceptions import CacheError
from repro.search.astar import a_star
from repro.search.dijkstra import dijkstra


def sp(ring, s, t):
    return a_star(ring, s, t).path


@pytest.fixture()
def three_paths(ring):
    return [sp(ring, 0, 100), sp(ring, 5, 80), sp(ring, 20, 130)]


def capacity_for(paths, count):
    """A capacity that holds exactly the `count` largest of `paths`."""
    sizes = sorted((path_size_bytes(p) for p in paths), reverse=True)
    return sum(sizes[:count])


class TestLRU:
    def test_lru_evicts_oldest_unused(self, ring, three_paths):
        cap = max(path_size_bytes(p) for p in three_paths) * 2
        cache = PathCache(ring, capacity_bytes=cap, eviction="lru")
        p1, p2, p3 = three_paths
        cache.insert(p1)
        cache.insert(p2)
        # Touch p1 so p2 becomes the LRU victim.
        cache.lookup(p1[0], p1[-1])
        cache.insert(p3)  # must evict to fit
        assert cache.evictions >= 1
        assert cache.lookup(p3[0], p3[-1]) is not None
        assert cache.size_bytes <= cap

    def test_eviction_keeps_answers_correct(self, ring, three_paths):
        cap = capacity_for(three_paths, 2)
        cache = PathCache(ring, capacity_bytes=cap, eviction="lru")
        for p in three_paths:
            cache.insert(p)
        for p in three_paths:
            hit = cache.lookup(p[0], p[-1])
            if hit is None:
                continue
            truth = dijkstra(ring, p[0], p[-1]).distance
            assert math.isclose(hit.distance, truth, rel_tol=1e-12)

    def test_path_larger_than_capacity_rejected(self, ring, three_paths):
        tiny = PathCache(ring, capacity_bytes=8, eviction="lru")
        assert tiny.insert(three_paths[0]) is None
        assert tiny.rejected_inserts == 1


class TestBenefit:
    def test_benefit_evicts_unhit_path(self, ring, three_paths):
        cap = capacity_for(three_paths, 2) + path_size_bytes(three_paths[2]) // 2
        cache = PathCache(ring, capacity_bytes=cap, eviction="benefit")
        p1, p2, p3 = three_paths
        cache.insert(p1)
        cache.insert(p2)
        # p1 earns hits; p2 earns none -> p2 is the benefit victim.
        for _ in range(3):
            cache.lookup(p1[0], p1[-1])
        cache.insert(p3)
        assert cache.lookup(p1[0], p1[-1]) is not None  # survivor
        assert cache.lookup(p3[0], p3[-1]) is not None  # newcomer

    def test_size_never_exceeds_capacity_under_churn(self, ring):
        cap = 600
        cache = PathCache(ring, capacity_bytes=cap, eviction="benefit")
        for t in range(20, 140, 7):
            r = a_star(ring, 0, t)
            if r.found:
                cache.insert(r.path)
            assert cache.size_bytes <= cap


class TestPolicyValidation:
    def test_unknown_policy_rejected(self, ring):
        with pytest.raises(CacheError):
            PathCache(ring, eviction="fifo")

    def test_none_policy_never_evicts(self, ring, three_paths):
        cap = capacity_for(three_paths, 1)
        cache = PathCache(ring, capacity_bytes=cap, eviction="none")
        inserted = [cache.insert(p) for p in three_paths]
        assert cache.evictions == 0
        assert sum(1 for pid in inserted if pid is not None) <= 2

    def test_clear_resets_eviction_state(self, ring, three_paths):
        cache = PathCache(ring, capacity_bytes=10**6, eviction="lru")
        cache.insert(three_paths[0])
        cache.clear()
        assert cache._last_used == {}
        assert cache._hit_count == {}
