"""Unit tests for the BatchAnswer result container."""

import pytest

from repro.core.results import BatchAnswer
from repro.queries.query import Query
from repro.search.common import PathResult


def make_answer():
    batch = BatchAnswer(method="m", decompose_seconds=0.5, answer_seconds=1.5)
    batch.answers = [
        (Query(0, 1), PathResult(0, 1, 10.0, [0, 1], 5, True)),
        (Query(0, 1), PathResult(0, 1, 12.0, [0, 1], 0, False)),
        (Query(2, 3), PathResult(2, 3, 7.0, [2, 3], 3, True)),
    ]
    batch.visited = 8
    batch.cache_hits = 1
    batch.cache_misses = 2
    batch.cache_bytes = 2 * 1024 * 1024
    batch.num_clusters = 2
    return batch


class TestBatchAnswer:
    def test_totals(self):
        b = make_answer()
        assert b.total_seconds == pytest.approx(2.0)
        assert b.num_queries == 3

    def test_hit_ratio(self):
        b = make_answer()
        assert b.hit_ratio == pytest.approx(1 / 3)

    def test_hit_ratio_no_cache(self):
        assert BatchAnswer(method="m").hit_ratio == 0.0

    def test_distances_takes_min_over_duplicates(self):
        b = make_answer()
        d = b.distances()
        assert d[Query(0, 1)] == 10.0
        assert d[Query(2, 3)] == 7.0

    def test_approximate_answers(self):
        b = make_answer()
        approx = b.approximate_answers()
        assert len(approx) == 1
        assert approx[0][1].distance == 12.0

    def test_summary_keys_and_values(self):
        s = make_answer().summary()
        assert s["queries"] == 3.0
        assert s["clusters"] == 2.0
        assert s["total_seconds"] == pytest.approx(2.0)
        assert s["visited"] == 8.0
        assert s["cache_mb"] == pytest.approx(2.0)
        assert 0.0 <= s["hit_ratio"] <= 1.0

    def test_empty_answer(self):
        b = BatchAnswer(method="empty")
        assert b.num_queries == 0
        assert b.distances() == {}
        assert b.summary()["queries"] == 0.0
