"""Unit tests for cluster/decomposition result types."""

import pytest

from repro.core.clusters import Decomposition, QueryCluster
from repro.exceptions import DecompositionError
from repro.queries.query import Query, QuerySet


def make_cluster(pairs, **kw):
    return QueryCluster(queries=[Query(s, t) for s, t in pairs], **kw)


class TestQueryCluster:
    def test_len_iter_add(self):
        c = make_cluster([(0, 1)])
        c.add(Query(2, 3))
        assert len(c) == 2
        assert list(c) == [Query(0, 1), Query(2, 3)]

    def test_sources_targets(self):
        c = make_cluster([(0, 1), (0, 2)])
        assert c.sources == {0}
        assert c.targets == {1, 2}

    def test_as_query_set(self):
        c = make_cluster([(0, 1)])
        assert isinstance(c.as_query_set(), QuerySet)

    def test_sorted_longest_first(self, grid6):
        c = make_cluster([(0, 1), (0, 35), (0, 7)])
        ordered = c.sorted_longest_first(grid6)
        dists = [grid6.euclidean(q.source, q.target) for q in ordered.queries]
        assert dists == sorted(dists, reverse=True)
        # Original untouched, metadata carried over.
        assert c.queries[0] == Query(0, 1)
        assert ordered.kind == c.kind


class TestDecomposition:
    def test_validate_accepts_partition(self):
        original = QuerySet.from_pairs([(0, 1), (2, 3), (4, 5)])
        d = Decomposition(
            [make_cluster([(0, 1), (2, 3)]), make_cluster([(4, 5)])], "test"
        )
        assert d.validate(original) is d

    def test_validate_rejects_missing_query(self):
        original = QuerySet.from_pairs([(0, 1), (2, 3)])
        d = Decomposition([make_cluster([(0, 1)])], "test")
        with pytest.raises(DecompositionError):
            d.validate(original)

    def test_validate_rejects_duplicated_query(self):
        original = QuerySet.from_pairs([(0, 1)])
        d = Decomposition([make_cluster([(0, 1)]), make_cluster([(0, 1)])], "test")
        with pytest.raises(DecompositionError):
            d.validate(original)

    def test_validate_rejects_foreign_query(self):
        original = QuerySet.from_pairs([(0, 1)])
        d = Decomposition([make_cluster([(0, 1), (9, 9)])], "test")
        with pytest.raises(DecompositionError):
            d.validate(original)

    def test_validate_multiplicity_aware(self):
        original = QuerySet.from_pairs([(0, 1), (0, 1)])
        ok = Decomposition([make_cluster([(0, 1), (0, 1)])], "test")
        ok.validate(original)
        bad = Decomposition([make_cluster([(0, 1)])], "test")
        with pytest.raises(DecompositionError):
            bad.validate(original)

    def test_counts_and_summary(self):
        d = Decomposition(
            [make_cluster([(0, 1), (2, 3)]), make_cluster([(4, 5)])],
            "test",
            elapsed_seconds=0.5,
        )
        assert len(d) == 2
        assert d.num_queries == 3
        assert d.cluster_sizes == [2, 1]
        s = d.summary()
        assert s["clusters"] == 2.0
        assert s["singletons"] == 1.0
        assert s["max_cluster"] == 2.0
        assert s["elapsed_seconds"] == 0.5

    def test_empty_decomposition_summary(self):
        s = Decomposition([], "test").summary()
        assert s["clusters"] == 0.0
        assert s["mean_cluster"] == 0.0
