"""Shared fixtures: small deterministic networks and query batches."""

from __future__ import annotations

import math

import pytest

from repro.network.generators import beijing_like, grid_city
from repro.network.graph import RoadNetwork
from repro.queries.query import Query, QuerySet
from repro.queries.workload import WorkloadGenerator
from repro.search.dijkstra import dijkstra


@pytest.fixture(scope="session")
def grid6() -> RoadNetwork:
    """A 6x6 jittered grid city (72 directed edge pairs), fully connected."""
    return grid_city(6, 6, spacing=1.0, seed=3)


@pytest.fixture(scope="session")
def ring() -> RoadNetwork:
    """The tiny Beijing-like ring-radial network (145 vertices)."""
    return beijing_like("tiny", seed=5)


@pytest.fixture()
def line_graph() -> RoadNetwork:
    """A 5-vertex directed path 0 -> 1 -> 2 -> 3 -> 4, unit-ish weights."""
    xs = [0.0, 1.0, 2.0, 3.0, 4.0]
    ys = [0.0, 0.0, 0.0, 0.0, 0.0]
    g = RoadNetwork(xs, ys)
    for i in range(4):
        g.add_edge(i, i + 1, 1.0 + 0.1 * i)
    return g


@pytest.fixture(scope="session")
def ring_workload(ring) -> WorkloadGenerator:
    return WorkloadGenerator(ring, seed=11)


@pytest.fixture(scope="session")
def ring_batch(ring) -> QuerySet:
    """A deterministic 80-query batch on the ring network.

    Drawn from a private generator so the batch does not depend on how
    many draws other tests made from the shared ``ring_workload``.
    """
    return WorkloadGenerator(ring, seed=101).batch(80)


@pytest.fixture(scope="session")
def grid_workload(grid6) -> WorkloadGenerator:
    return WorkloadGenerator(grid6, seed=13)


@pytest.fixture(scope="session")
def grid_batch(grid6) -> QuerySet:
    return WorkloadGenerator(grid6, seed=103).batch(40)


def exact_distance(graph, source: int, target: int) -> float:
    """Ground truth used across tests."""
    return dijkstra(graph, source, target).distance


def assert_valid_path(graph, path, source, target, distance, tol=1e-9):
    """A path must be a real edge walk from source to target of given length."""
    assert path[0] == source
    assert path[-1] == target
    total = 0.0
    for u, v in zip(path, path[1:]):
        assert graph.has_edge(u, v), f"missing edge ({u}, {v})"
        total += graph.weight(u, v)
    assert math.isclose(total, distance, rel_tol=0, abs_tol=tol)
