"""End-to-end integration tests across subsystems.

These exercise full pipelines the way the examples and benchmarks do —
network generation -> workload -> decomposition -> answering -> metrics —
and cross-check outcomes between independent implementations.
"""

import math

import pytest

from repro import (
    BatchProcessor,
    ContractionHierarchy,
    PrunedLandmarkLabeling,
    WorkloadGenerator,
    beijing_like,
    grid_city,
)
from repro.analysis.metrics import error_report
from repro.core.batch_runner import METHODS
from repro.network.io import load_text, save_text
from repro.queries.workload import band_for_network
from repro.search.dijkstra import dijkstra


class TestFullPipelineOnGrid:
    """The whole stack on a grid city (different topology than the ring)."""

    @pytest.fixture(scope="class")
    def setup(self):
        graph = grid_city(9, 9, spacing=2.0, seed=17)
        workload = WorkloadGenerator(graph, seed=3)
        batch = workload.batch(120)
        oracle = {
            q: dijkstra(graph, q.source, q.target).distance
            for q in batch.deduplicated()
        }
        return graph, batch, oracle

    @pytest.mark.parametrize("method", ["slc-s", "zlc", "r2r-s", "k-path"])
    def test_method_sound_on_grid(self, setup, method):
        graph, batch, oracle = setup
        answer = BatchProcessor(graph, seed=2).process(batch, method)
        assert answer.num_queries == len(batch)
        for q, r in answer.answers:
            assert r.distance >= oracle[q] - 1e-9
            if r.exact:
                assert math.isclose(r.distance, oracle[q], rel_tol=1e-12)

    def test_r2r_error_reporting_end_to_end(self, setup):
        graph, batch, oracle = setup
        answer = BatchProcessor(graph, eta=0.05).process(batch, "r2r-s")
        report = error_report(graph, answer, oracle)
        assert report.max_error <= 0.05 + 1e-9


class TestIndexesAgreeWithBatchMethods:
    """CH, PLL and the exact batch pipelines all give identical distances."""

    def test_three_way_agreement(self):
        graph = beijing_like("tiny", seed=2)
        workload = WorkloadGenerator(graph, seed=5)
        batch = workload.batch(40)
        ch = ContractionHierarchy(graph)
        pll = PrunedLandmarkLabeling(graph)
        answer = BatchProcessor(graph).process(batch, "slc-s")
        for q, r in answer.answers:
            assert math.isclose(r.distance, ch.distance(q.source, q.target), rel_tol=1e-9)
            assert math.isclose(r.distance, pll.distance(q.source, q.target), rel_tol=1e-9)


class TestPersistenceRoundTrip:
    """A network survives serialisation and keeps producing equal answers."""

    def test_answers_identical_after_reload(self, tmp_path):
        graph = beijing_like("tiny", seed=4)
        path = tmp_path / "city.gr"
        save_text(graph, path)
        reloaded = load_text(path)

        workload_a = WorkloadGenerator(graph, seed=7)
        workload_b = WorkloadGenerator(reloaded, seed=7)
        batch_a = workload_a.batch(30)
        batch_b = workload_b.batch(30)
        assert list(batch_a) == list(batch_b)

        answers_a = BatchProcessor(graph).process(batch_a, "slc-s").distances()
        answers_b = BatchProcessor(reloaded).process(batch_b, "slc-s").distances()
        for q, d in answers_a.items():
            assert math.isclose(d, answers_b[q], rel_tol=1e-12)


class TestDynamicWeightsEndToEnd:
    """Weight changes flow through every layer: graph, search, batch, index."""

    def test_batch_answers_track_snapshot(self):
        graph = beijing_like("tiny", seed=6).copy()
        workload = WorkloadGenerator(graph, seed=9)
        batch = workload.batch(30)
        before = BatchProcessor(graph).process(batch, "slc-s").distances()

        graph.scale_weights(2.0)
        after = BatchProcessor(graph).process(batch, "slc-s").distances()
        for q in before:
            assert math.isclose(after[q], 2.0 * before[q], rel_tol=1e-9)

    def test_index_goes_stale_but_batch_does_not(self):
        graph = beijing_like("tiny", seed=6).copy()
        ch = ContractionHierarchy(graph)
        u, v, w = next(iter(graph.edges()))
        graph.set_weight(u, v, w * 5.0)
        assert ch.stale
        # The index-free pipeline is correct against the new snapshot.
        workload = WorkloadGenerator(graph, seed=10)
        batch = workload.batch(15)
        answer = BatchProcessor(graph).process(batch, "slc-s")
        for q, r in answer.answers:
            truth = dijkstra(graph, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)


class TestEveryMethodOnEveryBand:
    """Smoke: the full method matrix runs on both distance bands."""

    @pytest.mark.parametrize("band", ["cache", "r2r"])
    def test_matrix(self, ring, ring_workload, band):
        lo, hi = band_for_network(ring, band)
        batch = ring_workload.batch(25, min_dist=lo, max_dist=hi)
        processor = BatchProcessor(ring, seed=1)
        for method in METHODS:
            answer = processor.process(batch, method)
            assert answer.num_queries > 0
