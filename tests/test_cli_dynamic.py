"""Smoke tests for the `repro dynamic` CLI subcommand."""

import pytest

from repro.cli import main


class TestDynamicCommand:
    def test_runs_and_reports(self, capsys):
        code = main(
            [
                "dynamic",
                "--scale",
                "tiny",
                "--batches",
                "4",
                "--size",
                "40",
                "--epoch-every",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit" in out
        assert "flushed_epochs=" in out
        # Two epochs changes over 4 batches with period 2: batches 3 and...
        # exactly one flush happens after the first change that follows a
        # built cache set.
        assert "flushed_epochs=0" not in out

    def test_no_epoch_changes(self, capsys):
        code = main(
            [
                "dynamic",
                "--scale",
                "tiny",
                "--batches",
                "2",
                "--size",
                "30",
                "--epoch-every",
                "0",
            ]
        )
        assert code == 0
        assert "flushed_epochs=0" in capsys.readouterr().out
