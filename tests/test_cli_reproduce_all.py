"""End-to-end CLI test: reproduce every artefact at tiny scale."""

from repro.cli import EXPERIMENTS, main


class TestReproduceAll:
    def test_all_artifacts_generated(self, capsys, tmp_path):
        code = main(
            [
                "reproduce",
                "--experiment",
                "all",
                "--scale",
                "tiny",
                "--sizes",
                "20,40",
                "--fig8-size",
                "30",
                "--servers",
                "8",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        for name in EXPERIMENTS:
            artefact = tmp_path / f"{name}.txt"
            assert artefact.exists(), name
            assert artefact.read_text().strip(), name
        out = capsys.readouterr().out
        assert "Fig 7-(a)" in out
        assert "Table I" in out
        assert "Table II" in out
        assert "Fig 8" in out
        # The paper's log-scale Fig 8 presentation is rendered too.
        assert "log-scale seconds" in out
        assert "arcflags-construction" in out
