"""Median-of-N aggregation: ``bench run --repeat`` and lenient label loads."""

import math

import pytest

from repro.bench.compare import aggregate_runs, load_label_lenient, median_value
from repro.bench.schema import Metric, RunMeta, SuiteResult, save_result

INF = float("inf")
NAN = float("nan")


def m(value, *, kind="time", direction="lower"):
    return Metric(value, kind=kind, direction=direction)


def result(metrics, suite="s", label="L"):
    return SuiteResult(
        suite=suite,
        label=label,
        meta=RunMeta("2026-08-08T00:00:00+00:00", "deadbeef", label),
        metrics=metrics,
    )


class TestMedianValue:
    def test_empty_is_nan(self):
        assert math.isnan(median_value([]))

    def test_single_value_is_itself(self):
        assert median_value([3.5]) == 3.5

    def test_odd_count_takes_the_middle(self):
        assert median_value([9.0, 1.0, 5.0]) == 5.0

    def test_even_count_takes_the_midpoint(self):
        assert median_value([1.0, 2.0, 3.0, 10.0]) == 2.5

    def test_any_nan_poisons(self):
        assert math.isnan(median_value([1.0, NAN, 2.0]))

    def test_equal_infinities_keep_their_sign(self):
        assert median_value([INF, INF]) == INF
        assert median_value([-INF, -INF]) == -INF

    def test_mixed_infinities_are_nan(self):
        assert math.isnan(median_value([-INF, INF]))

    def test_infinity_as_odd_middle_survives(self):
        assert median_value([1.0, INF, INF]) == INF


class TestAggregateRuns:
    def test_single_run_passes_through(self):
        r = result({"t": m(1.0)})
        assert aggregate_runs([r]) is r

    def test_median_across_three_runs(self):
        runs = [result({"t": m(v)}) for v in (3.0, 1.0, 2.0)]
        agg = aggregate_runs(runs)
        assert agg.metrics["t"].value == 2.0

    def test_metric_typing_comes_from_first_declaring_run(self):
        runs = [
            result({"qps": m(100.0, kind="ratio", direction="higher")}),
            result({"qps": m(120.0, kind="ratio", direction="higher")}),
            result({"qps": m(110.0, kind="ratio", direction="higher")}),
        ]
        agg = aggregate_runs(runs)
        assert agg.metrics["qps"].value == 110.0
        assert agg.metrics["qps"].direction == "higher"

    def test_info_metrics_keep_the_first_runs_value(self):
        runs = [
            result({"sha": m(1.0, kind="info"), "t": m(5.0)}),
            result({"sha": m(2.0, kind="info"), "t": m(7.0)}),
        ]
        agg = aggregate_runs(runs)
        assert agg.metrics["sha"].value == 1.0
        assert agg.metrics["t"].value == 6.0

    def test_metric_missing_from_some_runs_uses_present_values(self):
        runs = [
            result({"t": m(5.0)}),
            result({"t": m(7.0), "extra": m(1.0)}),
            result({"t": m(9.0)}),
        ]
        agg = aggregate_runs(runs)
        assert agg.metrics["t"].value == 7.0
        assert agg.metrics["extra"].value == 1.0

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])


class TestLoadLabelLenient:
    def test_groups_run_files_per_suite_and_takes_medians(self, tmp_path):
        for k, v in enumerate([10.0, 30.0, 20.0], start=1):
            save_result(result({"t": m(v)}), tmp_path, run_index=k)
        loaded, issues = load_label_lenient(tmp_path, "L")
        assert issues == []
        assert set(loaded) == {"s"}
        assert loaded["s"].metrics["t"].value == 20.0

    def test_single_file_label_unchanged(self, tmp_path):
        save_result(result({"t": m(42.0)}), tmp_path)
        loaded, issues = load_label_lenient(tmp_path, "L")
        assert issues == []
        assert loaded["s"].metrics["t"].value == 42.0

    def test_suites_aggregate_independently(self, tmp_path):
        for k, v in enumerate([1.0, 3.0, 2.0], start=1):
            save_result(result({"t": m(v)}, suite="a"), tmp_path, run_index=k)
        save_result(result({"t": m(9.0)}, suite="b"), tmp_path)
        loaded, issues = load_label_lenient(tmp_path, "L")
        assert issues == []
        assert loaded["a"].metrics["t"].value == 2.0
        assert loaded["b"].metrics["t"].value == 9.0


class TestSaveResultRunIndex:
    def test_first_run_keeps_the_canonical_name(self, tmp_path):
        path = save_result(result({"t": m(1.0)}), tmp_path, run_index=1)
        assert path == tmp_path / "L" / "s.json"
        assert path.exists()

    def test_later_runs_get_sibling_names(self, tmp_path):
        save_result(result({"t": m(1.0)}), tmp_path, run_index=1)
        save_result(result({"t": m(2.0)}), tmp_path, run_index=2)
        save_result(result({"t": m(3.0)}), tmp_path, run_index=3)
        assert (tmp_path / "L" / "s.run2.json").exists()
        assert (tmp_path / "L" / "s.run3.json").exists()
