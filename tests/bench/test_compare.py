"""Edge-case tests for ``repro bench compare`` classification and reporting."""

import json

import pytest

from repro.bench.compare import (
    IMPROVED,
    INCOMPARABLE,
    MISSING_IN_BASE,
    MISSING_IN_CANDIDATE,
    REGRESSED,
    WITHIN_NOISE,
    classify_metric,
    compare_labels,
    compare_results,
    render_markdown,
    verdict_payload,
)
from repro.bench.schema import (
    SCHEMA_VERSION,
    Metric,
    RunMeta,
    SchemaError,
    SuiteResult,
    save_result,
)


def m(value, *, kind="time", direction="lower", tolerance_pct=None):
    return Metric(value, kind=kind, direction=direction, tolerance_pct=tolerance_pct)


def result(label, metrics, suite="s"):
    return SuiteResult(
        suite=suite,
        label=label,
        meta=RunMeta("2026-08-08T00:00:00+00:00", "deadbeef", label),
        metrics=metrics,
    )


class TestClassify:
    def test_within_noise_inside_threshold(self):
        row = classify_metric("s", "k", m(100.0), m(104.0), 5.0)
        assert row.verdict == WITHIN_NOISE
        assert row.delta_pct == pytest.approx(4.0)

    def test_regression_beyond_threshold(self):
        row = classify_metric("s", "k", m(100.0), m(120.0), 5.0)
        assert row.verdict == REGRESSED
        assert row.delta_pct == pytest.approx(20.0)

    def test_improvement_beyond_threshold(self):
        row = classify_metric("s", "k", m(100.0), m(50.0), 5.0)
        assert row.verdict == IMPROVED

    def test_direction_higher_flips_the_sign(self):
        qps_base = m(100.0, kind="ratio", direction="higher")
        row = classify_metric("s", "qps", qps_base, m(50.0, kind="ratio",
                                                      direction="higher"), 5.0)
        assert row.verdict == REGRESSED
        row = classify_metric("s", "qps", qps_base, m(200.0, kind="ratio",
                                                      direction="higher"), 5.0)
        assert row.verdict == IMPROVED

    def test_metric_tolerance_widens_threshold(self):
        base = m(100.0, tolerance_pct=40.0)
        row = classify_metric("s", "k", base, m(130.0, tolerance_pct=40.0), 5.0)
        assert row.verdict == WITHIN_NOISE
        assert row.threshold_pct == 40.0

    def test_cli_threshold_wins_when_larger(self):
        base = m(100.0, tolerance_pct=1.0)
        row = classify_metric("s", "k", base, m(108.0, tolerance_pct=1.0), 10.0)
        assert row.verdict == WITHIN_NOISE
        assert row.threshold_pct == 10.0

    def test_zero_baseline_equal_is_within_noise(self):
        row = classify_metric("s", "k", m(0.0), m(0.0), 5.0)
        assert row.verdict == WITHIN_NOISE

    def test_zero_baseline_any_rise_is_real(self):
        # No relative delta exists off an exact zero: classified by
        # direction with the delta reported as undefined.
        row = classify_metric("s", "k", m(0.0), m(0.001), 5.0)
        assert row.verdict == REGRESSED
        assert row.delta_pct is None

    def test_zero_baseline_rise_improves_when_higher_is_better(self):
        row = classify_metric(
            "s", "k",
            m(0.0, kind="ratio", direction="higher"),
            m(0.5, kind="ratio", direction="higher"),
            5.0,
        )
        assert row.verdict == IMPROVED

    def test_near_zero_baseline_uses_relative_delta(self):
        # 1e-9 -> 2e-9 is +100%: relative comparison still applies off a
        # tiny-but-nonzero base, so noisy near-zero timers need tolerance.
        row = classify_metric("s", "k", m(1e-9), m(2e-9), 5.0)
        assert row.verdict == REGRESSED
        assert row.delta_pct == pytest.approx(100.0)

    def test_nan_is_incomparable(self):
        row = classify_metric("s", "k", m(float("nan")), m(1.0), 5.0)
        assert row.verdict == INCOMPARABLE
        assert row.delta_pct is None

    def test_inf_vs_finite_is_incomparable(self):
        row = classify_metric("s", "k", m(float("inf")), m(1.0), 5.0)
        assert row.verdict == INCOMPARABLE

    def test_equal_inf_is_within_noise(self):
        row = classify_metric("s", "k", m(float("inf")), m(float("inf")), 5.0)
        assert row.verdict == WITHIN_NOISE


class TestCompareResults:
    def test_missing_sides_reported(self):
        base = {"s": result("a", {"old": m(1.0), "both": m(1.0)})}
        cand = {"s": result("b", {"new": m(1.0), "both": m(1.0)})}
        report = compare_results(base, cand, base_label="a", candidate_label="b")
        verdicts = {row.key: row.verdict for row in report.rows}
        assert verdicts["old"] == MISSING_IN_CANDIDATE
        assert verdicts["new"] == MISSING_IN_BASE
        assert verdicts["both"] == WITHIN_NOISE
        # Missing metrics are advisory, not failures.
        assert report.exit_code == 0

    def test_info_metrics_skipped(self):
        base = {"s": result("a", {"note": m(1.0, kind="info")})}
        cand = {"s": result("b", {"note": m(99.0, kind="info")})}
        report = compare_results(base, cand, base_label="a", candidate_label="b")
        assert report.rows == []

    def test_regression_sets_exit_code(self):
        base = {"s": result("a", {"t": m(100.0)})}
        cand = {"s": result("b", {"t": m(200.0)})}
        report = compare_results(base, cand, base_label="a", candidate_label="b")
        assert report.exit_code == 1
        assert [row.key for row in report.regressions] == ["t"]


class TestCompareLabels:
    def test_round_trip_self_compare(self, tmp_path):
        for label in ("a", "b"):
            save_result(result(label, {"t": m(3.0), "n": m(5.0, kind="count")}),
                        tmp_path)
        report = compare_labels(tmp_path, "a", "b")
        assert report.exit_code == 0
        assert all(row.verdict == WITHIN_NOISE for row in report.rows)

    def test_missing_label_is_hard_error(self, tmp_path):
        save_result(result("a", {"t": m(3.0)}), tmp_path)
        with pytest.raises(SchemaError):
            compare_labels(tmp_path, "a", "ghost")

    def test_schema_mismatch_becomes_issue_and_fails(self, tmp_path):
        save_result(result("a", {"t": m(3.0)}), tmp_path)
        save_result(result("b", {"t": m(3.0)}), tmp_path)
        stale = tmp_path / "b" / "stale.json"
        payload = json.loads((tmp_path / "b" / "s.json").read_text())
        payload["schema_version"] = SCHEMA_VERSION + 1
        payload["suite"] = "stale"
        stale.write_text(json.dumps(payload))
        report = compare_labels(tmp_path, "a", "b")
        # The readable file still compares; the stale one is an issue and
        # flips the exit code.
        assert any("stale" in issue for issue in report.issues)
        assert report.exit_code == 1


class TestRendering:
    def _report(self):
        base = {"s": result("a", {"good": m(100.0), "bad": m(100.0)})}
        cand = {"s": result("b", {"good": m(101.0), "bad": m(250.0)})}
        return compare_results(base, cand, base_label="a", candidate_label="b")

    def test_markdown_has_summary_and_detail(self):
        text = render_markdown(self._report())
        assert "`a` → `b`" in text
        assert "| regressed | 1 |" in text
        assert "`bad`" in text
        assert "`good`" not in text  # within noise stays out of the detail

    def test_markdown_all_includes_within_noise(self):
        text = render_markdown(self._report(), include_within_noise=True)
        assert "`good`" in text

    def test_all_quiet_renders_flat_note(self):
        base = {"s": result("a", {"k": m(1.0)})}
        report = compare_results(base, base, base_label="a", candidate_label="a")
        assert "within the noise threshold" in render_markdown(report)

    def test_verdict_payload_is_json_serializable(self):
        base = {"s": result("a", {"k": m(float("inf"))})}
        cand = {"s": result("b", {"k": m(1.0)})}
        report = compare_results(base, cand, base_label="a", candidate_label="b")
        payload = verdict_payload(report)
        text = json.dumps(payload, allow_nan=False)  # must not need NaN tokens
        decoded = json.loads(text)
        assert decoded["metrics"][0]["base"] == "inf"
        assert decoded["counts"][INCOMPARABLE] == 1
        assert decoded["exit_code"] == 0
