"""Unit tests for the versioned benchmark result schema."""

import json

import pytest

from repro.bench.schema import (
    SCHEMA_VERSION,
    Metric,
    RunMeta,
    SchemaError,
    SuiteResult,
    from_dict,
    git_sha,
    load_label,
    load_result,
    machine_fingerprint,
    run_metadata,
    save_result,
    to_dict,
    utc_now_iso,
)


def make_result(label="lbl", suite="demo", metrics=None, rendered="table"):
    return SuiteResult(
        suite=suite,
        label=label,
        meta=RunMeta(
            created_utc="2026-08-08T00:00:00+00:00",
            git_sha="deadbeef",
            label=label,
            seed=7,
            knobs={"REPRO_BENCH_SCALE": "tiny"},
            machine={"python": "3.11"},
        ),
        metrics=metrics
        or {
            "elapsed_ms": Metric(12.5, unit="ms", kind="time", tolerance_pct=40.0),
            "visited": Metric(100.0, kind="count", tolerance_pct=0.0),
            "qps": Metric(5.0, kind="ratio", direction="higher"),
        },
        rendered=rendered,
    )


class TestMetricValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            Metric(1.0, kind="speed")

    def test_unknown_direction_rejected(self):
        with pytest.raises(SchemaError):
            Metric(1.0, direction="sideways")


class TestProvenance:
    def test_utc_timestamp_has_offset(self):
        stamp = utc_now_iso()
        assert stamp.endswith("+00:00")

    def test_git_sha_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafe1234")
        assert git_sha() == "cafe1234"

    def test_git_sha_unknown_outside_repo(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        assert git_sha(cwd=tmp_path) == "unknown"

    def test_machine_fingerprint_keys(self):
        fp = machine_fingerprint()
        assert set(fp) == {"platform", "python", "machine", "cpus"}

    def test_run_metadata_captures_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafe1234")
        meta = run_metadata("mylabel", seed=3, knobs={"K": "v"})
        assert meta.label == "mylabel"
        assert meta.seed == 3
        assert meta.git_sha == "cafe1234"
        assert meta.knobs == {"K": "v"}
        assert meta.created_utc.endswith("+00:00")


class TestRoundTrip:
    def test_dict_round_trip(self):
        result = make_result()
        clone = from_dict(to_dict(result))
        assert clone == result

    def test_file_round_trip(self, tmp_path):
        result = make_result()
        path = save_result(result, tmp_path)
        assert path == tmp_path / "lbl" / "demo.json"
        assert load_result(path) == result

    def test_files_are_strict_json(self, tmp_path):
        metrics = {
            "bad": Metric(float("nan"), kind="ratio"),
            "hot": Metric(float("inf"), kind="ratio"),
            "cold": Metric(float("-inf"), kind="ratio"),
        }
        path = save_result(make_result(metrics=metrics), tmp_path)
        # Strict parsing (no NaN tokens) must succeed...
        data = json.loads(path.read_text(), parse_constant=lambda s: pytest.fail(s))
        assert data["metrics"]["bad"]["value"] == "nan"
        assert data["metrics"]["hot"]["value"] == "inf"
        assert data["metrics"]["cold"]["value"] == "-inf"
        # ...and the loader decodes the strings back to floats.
        loaded = load_result(path)
        assert loaded.metrics["bad"].value != loaded.metrics["bad"].value  # NaN
        assert loaded.metrics["hot"].value == float("inf")
        assert loaded.metrics["cold"].value == float("-inf")


class TestValidation:
    def test_missing_schema_version(self):
        payload = to_dict(make_result())
        del payload["schema_version"]
        with pytest.raises(SchemaError, match="missing schema_version"):
            from_dict(payload, where="x.json")

    def test_unsupported_schema_version(self):
        payload = to_dict(make_result())
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaError, match="not supported"):
            from_dict(payload, where="x.json")

    @pytest.mark.parametrize("field", ["suite", "label", "meta", "metrics"])
    def test_missing_required_field(self, field):
        payload = to_dict(make_result())
        del payload[field]
        with pytest.raises(SchemaError, match=field):
            from_dict(payload)

    def test_non_object_payload(self):
        with pytest.raises(SchemaError, match="expected a JSON object"):
            from_dict([1, 2, 3])

    def test_bad_metric_value(self):
        payload = to_dict(make_result())
        payload["metrics"]["visited"]["value"] = "fast"
        with pytest.raises(SchemaError, match="visited"):
            from_dict(payload)

    def test_bad_metric_kind(self):
        payload = to_dict(make_result())
        payload["metrics"]["visited"]["kind"] = "velocity"
        with pytest.raises(SchemaError, match="visited"):
            from_dict(payload)

    def test_error_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SchemaError, match="broken.json"):
            load_result(path)


class TestLoadLabel:
    def test_load_label_collects_suites(self, tmp_path):
        save_result(make_result(suite="one"), tmp_path)
        save_result(make_result(suite="two"), tmp_path)
        loaded = load_label(tmp_path, "lbl")
        assert set(loaded) == {"one", "two"}

    def test_missing_label_raises(self, tmp_path):
        with pytest.raises(SchemaError, match="no results"):
            load_label(tmp_path, "ghost")

    def test_empty_label_raises(self, tmp_path):
        (tmp_path / "hollow").mkdir()
        with pytest.raises(SchemaError, match="hollow"):
            load_label(tmp_path, "hollow")
