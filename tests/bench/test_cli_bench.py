"""End-to-end CLI tests for ``repro bench run/compare/list``.

The round-trip acceptance check: run the real ``smoke`` suite twice on
the tiny network, compare the two labels, and require every metric
within the noise threshold with exit code 0.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def pinned_sha(monkeypatch):
    monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")


class TestBenchList:
    def test_lists_registered_suites(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "microbench", "csr", "fig7a", "ablations"):
            assert name in out


class TestBenchRoundTrip:
    def test_run_twice_then_compare_is_quiet(self, capsys, tmp_path, pinned_sha):
        # Each label is a median of 3 repeats: single-run wall times on a
        # busy CI box swing past the 40% tolerance, medians do not.
        results_dir = str(tmp_path / "results")
        for label in ("a", "b"):
            code = main(
                ["bench", "run", "--suite", "smoke", "--label", label,
                 "--results-dir", results_dir, "--repeat", "3"]
            )
            assert code == 0
        out = capsys.readouterr().out
        assert "45 metrics recorded" in out

        md_path = tmp_path / "report.md"
        json_path = tmp_path / "verdict.json"
        code = main(
            ["bench", "compare", "a", "b", "--results-dir", results_dir,
             "--markdown-out", str(md_path), "--json-out", str(json_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bench compare" in out
        assert "regressed | 0" in out

        verdict = json.loads(json_path.read_text())
        assert verdict["exit_code"] == 0
        assert verdict["counts"]["regressed"] == 0
        assert verdict["counts"]["within-noise"] > 0
        assert md_path.read_text().startswith("### bench compare")

    def test_result_file_carries_provenance(self, tmp_path, pinned_sha, capsys):
        results_dir = tmp_path / "results"
        main(["bench", "run", "--suite", "smoke", "--label", "prov",
              "--results-dir", str(results_dir)])
        capsys.readouterr()
        data = json.loads((results_dir / "prov" / "smoke.json").read_text())
        assert data["schema_version"] == 1
        assert data["meta"]["git_sha"] == "deadbeef"
        assert data["meta"]["created_utc"].endswith("+00:00")
        assert data["meta"]["machine"]["python"]
        assert (results_dir / "prov" / "smoke.txt").exists()

    def test_fabricated_regression_fails_compare(self, capsys, tmp_path, pinned_sha):
        results_dir = str(tmp_path / "results")
        main(["bench", "run", "--suite", "smoke", "--label", "a",
              "--results-dir", results_dir])
        path = tmp_path / "results" / "a" / "smoke.json"
        worse = json.loads(path.read_text())
        worse["label"] = "worse"
        worse["meta"]["label"] = "worse"
        for metric in worse["metrics"].values():
            if metric["kind"] == "count" and metric["direction"] == "lower":
                metric["value"] = float(metric["value"]) * 10 + 100
        worse_dir = tmp_path / "results" / "worse"
        worse_dir.mkdir()
        (worse_dir / "smoke.json").write_text(json.dumps(worse))
        code = main(["bench", "compare", "a", "worse", "--results-dir", results_dir])
        out = capsys.readouterr().out
        assert code == 1
        assert "regressed" in out


class TestBenchErrors:
    def test_unknown_suite_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown benchmark suite"):
            main(["bench", "run", "--suite", "warp", "--label", "x",
                  "--results-dir", str(tmp_path)])

    def test_bad_knob_names_the_variable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(SystemExit, match="REPRO_BENCH_SCALE"):
            main(["bench", "run", "--suite", "smoke", "--label", "x",
                  "--results-dir", str(tmp_path)])

    def test_compare_missing_label_exits_with_message(self, tmp_path):
        with pytest.raises(SystemExit, match="bench compare failed"):
            main(["bench", "compare", "ghost-a", "ghost-b",
                  "--results-dir", str(tmp_path)])
