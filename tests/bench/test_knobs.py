"""Tests for centralized environment-knob validation."""

import pytest

from repro.bench.knobs import (
    BenchConfigError,
    consumed_knobs,
    env_float,
    env_int,
    env_int_list,
    env_str,
)
from repro.exceptions import ConfigurationError


class TestParsing:
    def test_int_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_N", raising=False)
        assert env_int("REPRO_TEST_N", 40) == 40
        monkeypatch.setenv("REPRO_TEST_N", "7")
        assert env_int("REPRO_TEST_N", 40) == 7

    def test_float(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_F", "2.5")
        assert env_float("REPRO_TEST_F", 1.0) == 2.5

    def test_str_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_S", "tiny")
        assert env_str("REPRO_TEST_S", "medium", choices=("tiny", "medium")) == "tiny"

    def test_int_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_L", "100, 300,900")
        assert env_int_list("REPRO_TEST_L", (1,)) == (100, 300, 900)


class TestErrors:
    def test_bad_int_names_knob_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_N", "fast")
        with pytest.raises(BenchConfigError) as exc:
            env_int("REPRO_TEST_N", 40)
        assert "REPRO_TEST_N" in str(exc.value)
        assert "fast" in str(exc.value)
        assert exc.value.name == "REPRO_TEST_N"
        assert exc.value.raw == "fast"

    def test_bad_float(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_F", "3%")
        with pytest.raises(BenchConfigError):
            env_float("REPRO_TEST_F", 1.0)

    def test_bad_choice(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_S", "galactic")
        with pytest.raises(BenchConfigError, match="galactic"):
            env_str("REPRO_TEST_S", "medium", choices=("tiny", "medium"))

    def test_bad_list(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_L", "100,three")
        with pytest.raises(BenchConfigError):
            env_int_list("REPRO_TEST_L", (1,))

    def test_empty_list_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_L", " , ,")
        with pytest.raises(BenchConfigError):
            env_int_list("REPRO_TEST_L", (1,))

    def test_is_a_configuration_error(self, monkeypatch):
        # Callers that already handle the repo's ConfigurationError keep
        # working unchanged.
        monkeypatch.setenv("REPRO_TEST_N", "x")
        with pytest.raises(ConfigurationError):
            env_int("REPRO_TEST_N", 40)


class TestConsumedRecording:
    def test_reads_are_recorded_with_effective_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_RECORDED", "9")
        monkeypatch.delenv("REPRO_TEST_DEFAULTED", raising=False)
        env_int("REPRO_TEST_RECORDED", 1)
        env_int("REPRO_TEST_DEFAULTED", 42)
        seen = consumed_knobs()
        assert seen["REPRO_TEST_RECORDED"] == "9"
        assert seen["REPRO_TEST_DEFAULTED"] == "42"

    def test_snapshot_is_a_copy(self):
        snap = consumed_knobs()
        snap["INJECTED"] = "nope"
        assert "INJECTED" not in consumed_knobs()
