"""Runner and registry tests, using a synthetic registered suite.

The heavy end-to-end path (a real suite on the tiny network, twice, then
``repro bench compare``) lives in ``tests/bench/test_cli_bench.py``;
these tests pin the plumbing — registration, resolution, persistence,
provenance — with a fast fake suite.
"""

import pytest

from repro.bench.registry import (
    Suite,
    SuiteContext,
    SuiteRun,
    all_suites,
    register,
    resolve_suites,
    suite,
)
from repro.bench.runner import run_suites
from repro.bench.schema import Metric, load_label
from repro.exceptions import ConfigurationError

EXPECTED_SUITES = {
    "ablations",
    "csr",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig7d",
    "fig7e",
    "fig7f",
    "fig8",
    "microbench",
    "obs_overhead",
    "scaling",
    "smoke",
    "streaming",
    "table1",
    "table2",
}


@pytest.fixture()
def fake_suite():
    """Register a throwaway suite; unregister on teardown."""
    from repro.bench import registry

    name = "zz-test-suite"

    @suite(name, "synthetic suite for runner tests", default_scale="tiny")
    def body(ctx: SuiteContext) -> SuiteRun:
        return SuiteRun(
            metrics={
                "elapsed_ms": Metric(1.25, unit="ms", kind="time",
                                     tolerance_pct=40.0),
                "visited": Metric(64.0, kind="count", tolerance_pct=0.0),
            },
            rendered="fake table",
            extra_renders={"companion": "extra table"},
        )

    yield name
    registry._REGISTRY.pop(name, None)


class TestRegistry:
    def test_all_paper_suites_registered(self):
        names = {entry.name for entry in all_suites()}
        assert EXPECTED_SUITES <= names

    def test_unknown_suite_names_the_known_ones(self):
        with pytest.raises(ConfigurationError, match="microbench"):
            resolve_suites(["warp-drive"])

    def test_all_expands(self):
        resolved = {entry.name for entry in resolve_suites(["all"])}
        assert EXPECTED_SUITES <= resolved

    def test_duplicate_names_deduplicated(self):
        assert len(resolve_suites(["smoke", "smoke"])) == 1

    def test_double_registration_rejected(self):
        entry = all_suites()[0]
        with pytest.raises(ConfigurationError, match="twice"):
            register(Suite(entry.name, entry.fn, "dup"))


class TestSuiteContext:
    def test_explicit_scale_wins(self, monkeypatch, fake_suite):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "medium")
        from repro.bench.registry import get_suite

        entry = get_suite(fake_suite)
        assert SuiteContext(scale="tiny").scale_for(entry) == "tiny"
        assert SuiteContext().scale_for(entry) == "medium"

    def test_suite_default_scale_is_fallback(self, monkeypatch, fake_suite):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        from repro.bench.registry import get_suite

        assert SuiteContext().scale_for(get_suite(fake_suite)) == "tiny"

    def test_sizes_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SIZES", "10,20")
        assert SuiteContext().sizes() == (10, 20)
        assert SuiteContext(sizes=(5,)).sizes() == (5,)


class TestRunSuites:
    def test_persists_schema_and_renders(self, tmp_path, monkeypatch, fake_suite):
        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
        lines = []
        results = run_suites(
            [fake_suite], "trial", tmp_path, seed=11, on_progress=lines.append
        )
        assert len(results) == 1
        result, path = results[0]
        assert path == tmp_path / "trial" / f"{fake_suite}.json"
        assert (tmp_path / "trial" / f"{fake_suite}.txt").read_text() == "fake table\n"
        assert (tmp_path / "trial" / "companion.txt").read_text() == "extra table\n"
        assert any("running suite" in line for line in lines)

        loaded = load_label(tmp_path, "trial")[fake_suite]
        assert loaded.metrics["visited"].value == 64.0
        assert loaded.meta.git_sha == "deadbeef"
        assert loaded.meta.seed == 11
        assert loaded.meta.label == "trial"
        assert loaded.meta.created_utc.endswith("+00:00")
        assert loaded.rendered == "fake table"

    def test_unknown_suite_fails_before_running(self, tmp_path):
        with pytest.raises(ConfigurationError):
            run_suites(["no-such-suite"], "trial", tmp_path)
