"""ParallelBatchEngine under injected faults: the chaos invariant.

Every test here asserts some slice of the same contract: whatever a
seeded FaultPlan throws at the engine, valid queries come back identical
to the fault-free serial answer, failures beyond the retry budget land in
dead letters, and the counters account for everything.
"""

import pytest

from repro.network.graph import RoadNetwork
from repro.obs import MetricsRegistry, use_registry
from repro.parallel import ParallelBatchEngine
from repro.queries.query import Query, QuerySet
from repro.resilience import (
    CLOSED,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    NO_RETRY,
    OPEN,
    REASON_INVALID_QUERY,
    REASON_NO_PATH,
    RetryPolicy,
    RetryPolicy as RP,
    default_chaos_plan,
)

def answers_key(batch):
    """Everything that must be byte-identical between faulted and clean runs."""
    return sorted((q, r.distance, tuple(r.path), r.exact) for q, r in batch.answers)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_engine(answerer, **options):
    options.setdefault("workers", 2)
    return ParallelBatchEngine.from_answerer(answerer, **options)


class TestUnitFaults:
    def test_crashes_are_retried_to_the_serial_answer(
        self, answerer, decomposition, serial_answer
    ):
        plan = FaultPlan(
            seed=5, specs=(FaultSpec(site="unit", kind="crash", probability=0.5),)
        )
        with make_engine(answerer, fault_plan=plan) as engine:
            outcome = engine.execute(decomposition, method="chaos")
        assert answers_key(outcome.answer) == answers_key(serial_answer)
        report = outcome.report
        assert report.faults_by_kind.get("crash", 0) > 0
        assert report.retries >= report.faults_by_kind["crash"]
        assert report.quarantined_units == 0
        assert not report.dead_letters

    def test_hang_slowdown_still_matches_serial(
        self, answerer, decomposition, serial_answer
    ):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="unit", kind="hang", units=(0, 1), delay_seconds=0.05),
            )
        )
        with make_engine(answerer, fault_plan=plan) as engine:
            outcome = engine.execute(decomposition, method="chaos")
        assert answers_key(outcome.answer) == answers_key(serial_answer)
        assert outcome.report.faults_by_kind.get("hang", 0) == 2
        # No timeout configured: a hang is just latency, not a failure.
        assert outcome.report.retries == 0

    def test_hang_past_unit_timeout_is_retried(
        self, answerer, decomposition, serial_answer
    ):
        plan = FaultPlan(
            specs=(FaultSpec(site="unit", kind="hang", units=(0,), delay_seconds=1.0),)
        )
        with make_engine(
            answerer,
            fault_plan=plan,
            unit_timeout=0.15,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_seconds=0.0, jitter=0.0),
        ) as engine:
            outcome = engine.execute(decomposition, method="chaos")
        assert answers_key(outcome.answer) == answers_key(serial_answer)
        assert outcome.report.unit_timeouts >= 1
        assert outcome.report.retries >= 1

    def test_hard_worker_exit_breaks_pool_and_recovers(
        self, answerer, decomposition, serial_answer
    ):
        plan = FaultPlan(specs=(FaultSpec(site="unit", kind="exit", units=(0,)),))
        breaker = CircuitBreaker(failure_threshold=10)
        with make_engine(answerer, fault_plan=plan, breaker=breaker) as engine:
            outcome = engine.execute(decomposition, method="chaos")
        assert answers_key(outcome.answer) == answers_key(serial_answer)
        assert outcome.report.faults_by_kind.get("exit", 0) == 1
        assert outcome.report.retries >= 1

    def test_exhausted_retries_quarantine_but_still_answer(
        self, answerer, decomposition, serial_answer
    ):
        # max_attempt=99: the fault hits every pool attempt, so the unit
        # must fall down the ladder — where the in-process rung (no
        # injection) answers it.
        plan = FaultPlan(
            specs=(
                FaultSpec(site="unit", kind="crash", units=(0,), max_attempt=99),
            )
        )
        with make_engine(
            answerer,
            fault_plan=plan,
            retry_policy=RP(max_attempts=2, base_delay_seconds=0.0, jitter=0.0),
        ) as engine:
            outcome = engine.execute(decomposition, method="chaos")
        assert answers_key(outcome.answer) == answers_key(serial_answer)
        report = outcome.report
        assert report.quarantined_units == 1
        assert report.retries >= 1
        assert not report.dead_letters
        [trace] = [u for u in report.units if u.quarantined]
        assert trace.index == 0
        assert trace.fallback
        assert trace.attempts == 2

    def test_default_chaos_plan_end_to_end(
        self, answerer, decomposition, serial_answer
    ):
        with make_engine(
            answerer,
            fault_plan=default_chaos_plan(seed=3),
            retry_policy=RetryPolicy(max_attempts=3),
        ) as engine:
            outcome = engine.execute(decomposition, method="chaos")
        assert answers_key(outcome.answer) == answers_key(serial_answer)
        assert outcome.report.faults_injected > 0


class TestValidation:
    def test_out_of_range_queries_become_dead_letters(self, ring, answerer):
        n = ring.num_vertices
        batch = QuerySet([Query(0, 5), Query(n + 3, 1), Query(2, n)])
        with make_engine(answerer) as engine:
            outcome = engine.execute(batch)
        assert len(outcome.answer.answers) == 1
        assert len(outcome.report.dead_letters) == 2
        assert all(
            d.reason == REASON_INVALID_QUERY for d in outcome.report.dead_letters
        )
        letters = {(d.source, d.target) for d in outcome.report.dead_letters}
        assert letters == {(n + 3, 1), (2, n)}

    def test_no_bare_keyerror_for_bad_ids(self, answerer):
        with make_engine(answerer, workers=1) as engine:
            outcome = engine.execute(QuerySet([Query(10**6, 0)]))
        assert outcome.answer.answers == []
        assert len(outcome.report.dead_letters) == 1


class TestQuarantineLadder:
    def test_no_path_query_dead_letters_not_aborts(self):
        # Two islands: (0,1) and (2,3).  The cross-island query has no
        # path; the ladder must record it and still answer the others.
        graph = RoadNetwork(
            xs=[0.0, 1.0, 10.0, 11.0],
            ys=[0.0, 0.0, 0.0, 0.0],
            edges=[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)],
        )
        from repro.core.local_cache import LocalCacheAnswerer

        answerer = LocalCacheAnswerer(graph, cache_bytes=64 * 1024, order="longest")
        engine = ParallelBatchEngine.from_answerer(
            answerer, workers=2, retry_policy=NO_RETRY
        )
        # Force the ladder all the way down: the answerer always raises,
        # so every query lands on the last-resort Dijkstra rung — where
        # the unreachable one is detected and dead-lettered.
        import repro.parallel.worker as worker_module

        original = worker_module.answer_one

        def always_broken(answerer_arg, cluster):
            raise RuntimeError("forced unit failure")

        engine._ensure_pool = lambda workers: (_ for _ in ()).throw(
            RuntimeError("pool down")
        )
        worker_module.answer_one = always_broken
        try:
            outcome = engine.execute(
                QuerySet([Query(0, 1), Query(0, 3), Query(2, 3)])
            )
        finally:
            worker_module.answer_one = original
            engine.close()
        answered = {(q.source, q.target) for q, _ in outcome.answer.answers}
        assert answered == {(0, 1), (2, 3)}
        [letter] = outcome.report.dead_letters
        assert (letter.source, letter.target) == (0, 3)
        assert letter.reason == REASON_NO_PATH

    def test_singleton_rung_uses_plain_dijkstra(self, ring, answerer, ring_batch):
        """Even with the answerer fully broken, queries are still answered."""
        import repro.parallel.worker as worker_module

        sub = QuerySet(list(ring_batch)[:6])
        engine = ParallelBatchEngine.from_answerer(
            answerer, workers=2, retry_policy=NO_RETRY
        )
        engine._ensure_pool = lambda workers: (_ for _ in ()).throw(
            RuntimeError("pool down")
        )
        original = worker_module.answer_one

        def always_broken(answerer_arg, cluster):
            raise RuntimeError("answerer broken")

        worker_module.answer_one = always_broken
        try:
            outcome = engine.execute(sub)
        finally:
            worker_module.answer_one = original
            engine.close()
        assert len(outcome.answer.answers) == len(sub)
        assert not outcome.report.dead_letters
        from repro.search.dijkstra import dijkstra

        for q, r in outcome.answer.answers:
            assert r.distance == pytest.approx(
                dijkstra(ring, q.source, q.target).distance
            )


class TestCircuitBreaker:
    def test_pool_failures_trip_engine_to_serial(
        self, answerer, decomposition, serial_answer
    ):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=60.0, clock=clock
        )
        engine = ParallelBatchEngine.from_answerer(
            answerer, workers=2, retry_policy=NO_RETRY, breaker=breaker
        )
        real_ensure = engine._ensure_pool
        engine._ensure_pool = lambda workers: (_ for _ in ()).throw(
            RuntimeError("no pools today")
        )
        try:
            first = engine.execute(decomposition, method="chaos")
            assert answers_key(first.answer) == answers_key(serial_answer)
            assert breaker.state == OPEN
            # While open: the engine pre-trips to serial in-process mode.
            second = engine.execute(decomposition, method="chaos")
            assert second.report.breaker_tripped
            assert second.report.workers == 1
            assert second.report.start_method == "in-process"
            assert answers_key(second.answer) == answers_key(serial_answer)
            # Cooldown over: the half-open probe uses a (now healthy) pool
            # and success closes the breaker again.
            clock.advance(61.0)
            engine._ensure_pool = real_ensure
            third = engine.execute(decomposition, method="chaos")
            assert not third.report.breaker_tripped
            assert third.report.workers == 2
            assert answers_key(third.answer) == answers_key(serial_answer)
            assert breaker.state == CLOSED
        finally:
            engine.close()

    def test_injected_pool_break_is_retried(
        self, answerer, decomposition, serial_answer
    ):
        plan = FaultPlan(specs=(FaultSpec(site="pool", kind="break", units=(0,)),))
        with make_engine(
            answerer,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, base_delay_seconds=0.0, jitter=0.0),
        ) as engine:
            outcome = engine.execute(decomposition, method="chaos")
        assert answers_key(outcome.answer) == answers_key(serial_answer)
        assert outcome.report.faults_by_kind.get("break", 0) == 1
        assert outcome.report.retries >= 1
        assert outcome.report.quarantined_units == 0


class TestCounters:
    def test_serial_and_parallel_report_identical_counters(
        self, answerer, decomposition
    ):
        """Regression pin: fallback and retry counters agree across modes."""
        totals = {}
        for workers in (1, 2):
            registry = MetricsRegistry()
            with use_registry(registry):
                with make_engine(answerer, workers=workers) as engine:
                    outcome = engine.execute(decomposition, method="slc-s")
            assert outcome.report.fallbacks == 0
            assert outcome.report.retries == 0
            totals[workers] = registry.snapshot().counters
        assert totals[1] == totals[2]
        assert totals[1]["resilience.retries_total"] == 0
        assert totals[1]["resilience.dead_letters_total"] == 0
        assert totals[1]["parallel.fallbacks"] == 0

    def test_resilience_counters_flow_to_registry(self, answerer, decomposition):
        plan = FaultPlan(
            seed=5, specs=(FaultSpec(site="unit", kind="crash", probability=0.5),)
        )
        registry = MetricsRegistry()
        with use_registry(registry):
            with make_engine(
                answerer, fault_plan=plan, retry_policy=RetryPolicy(max_attempts=3)
            ) as engine:
                outcome = engine.execute(decomposition, method="chaos")
        counters = registry.snapshot().counters
        assert counters["resilience.retries_total"] == outcome.report.retries
        assert (
            counters["resilience.faults_injected_total"]
            == outcome.report.faults_injected
        )
        assert counters["resilience.faults.crash"] > 0
        gauges = registry.snapshot().gauges
        assert "resilience.breaker_state" in gauges


class TestReportShape:
    def test_speedup_zero_for_empty_report(self):
        from repro.parallel.engine import ExecutionReport

        report = ExecutionReport(
            requested_workers=4, workers=4, start_method="fork", wall_seconds=0.0
        )
        assert report.speedup == 0.0
        assert report.utilisation == 0.0
