"""DeadLetterRecord serialisation and the summary/render helpers."""

from repro.resilience import (
    DeadLetterRecord,
    REASON_INVALID_QUERY,
    REASON_NO_PATH,
    STAGE_QUARANTINE,
    STAGE_VALIDATION,
    render_dead_letters,
    summarize_dead_letters,
)


def _record(**overrides):
    base = dict(
        source=1,
        target=2,
        reason=REASON_INVALID_QUERY,
        stage=STAGE_VALIDATION,
        detail="vertex id out of range (|V| = 10)",
    )
    base.update(overrides)
    return DeadLetterRecord(**base)


class TestRecord:
    def test_round_trip_through_dict(self):
        record = _record(
            reason=REASON_NO_PATH,
            stage=STAGE_QUARANTINE,
            error="NoPathError",
            unit=4,
            attempts=3,
        )
        assert DeadLetterRecord.from_dict(record.to_dict()) == record

    def test_defaults_survive_sparse_dict(self):
        record = DeadLetterRecord.from_dict(
            {"source": 7, "target": 9, "reason": "no-path", "stage": "session"}
        )
        assert record.error == ""
        assert record.unit is None
        assert record.attempts == 0


class TestHelpers:
    def test_summarize_counts_by_reason(self):
        records = [
            _record(),
            _record(source=3),
            _record(reason=REASON_NO_PATH, stage=STAGE_QUARANTINE),
        ]
        assert summarize_dead_letters(records) == {
            REASON_INVALID_QUERY: 2,
            REASON_NO_PATH: 1,
        }

    def test_render_empty(self):
        assert render_dead_letters([]) == "no dead letters"

    def test_render_limits_output(self):
        records = [_record(source=i) for i in range(15)]
        text = render_dead_letters(records, limit=10)
        assert "15 dead letter(s)" in text
        assert "... and 5 more" in text
        assert "(0 -> 2)" in text

    def test_render_includes_unit_and_error(self):
        text = render_dead_letters(
            [_record(reason=REASON_NO_PATH, unit=3, error="NoPathError")]
        )
        assert "unit=3" in text
        assert "NoPathError" in text
