"""BatchQueryService under faults: windows degrade gracefully, never drop."""

import math

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.queries.arrivals import TimedQuery
from repro.queries.query import Query, QuerySet
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    REASON_INVALID_QUERY,
    RetryPolicy,
)
from repro.search.dijkstra import dijkstra
from repro.service import BatchQueryService


def arrivals_for(queries, windows=2, window_seconds=0.5):
    dt = windows * window_seconds / (len(queries) + 1)
    return [TimedQuery(i * dt, q) for i, q in enumerate(queries)]


def answered_pairs(report):
    return sorted(
        (q.source, q.target, round(r.distance, 9))
        for w in report.windows
        if w.answer is not None
        for q, r in w.answer.answers
    )


@pytest.fixture(scope="module")
def stream(ring_batch):
    return list(ring_batch)[:40]


@pytest.fixture(scope="module")
def baseline(ring, stream):
    with BatchQueryService(ring, window_seconds=0.5, workers=0) as service:
        return service.run(arrivals_for(stream))


class TestValidation:
    def test_invalid_queries_dead_letter_not_abort(self, ring, stream, baseline):
        n = ring.num_vertices
        mixed = stream[:10] + [Query(n + 1, 0), Query(0, n + 9)] + stream[10:]
        with BatchQueryService(ring, window_seconds=0.5, workers=0) as service:
            report = service.run(arrivals_for(mixed))
        assert answered_pairs(report) == answered_pairs(baseline)
        assert len(report.dead_letters) == 2
        assert all(d.reason == REASON_INVALID_QUERY for d in report.dead_letters)
        assert {(d.source, d.target) for d in report.dead_letters} == {
            (n + 1, 0),
            (0, n + 9),
        }

    def test_validation_also_guards_the_session_path(self, ring, stream):
        n = ring.num_vertices
        mixed = [Query(n + 5, 3)] + stream[:8]
        service = BatchQueryService(ring, window_seconds=0.5, workers=1)
        report = service.run(arrivals_for(mixed))
        assert len(report.dead_letters) == 1
        assert report.answered_queries == 8


class TestSessionFaults:
    def test_transient_session_failure_is_retried(self, ring, stream, baseline):
        plan = FaultPlan(
            specs=(FaultSpec(site="session", kind="transient", probability=1.0),)
        )
        policy = RetryPolicy(max_attempts=2, base_delay_seconds=0.0, jitter=0.0)
        service = BatchQueryService(
            ring,
            window_seconds=0.5,
            workers=1,
            fault_plan=plan,
            retry_policy=policy,
        )
        report = service.run(arrivals_for(stream))
        assert answered_pairs(report) == answered_pairs(baseline)
        assert report.total_retries == report.busy_windows
        assert report.degraded_windows == 0

    def test_persistent_session_failure_degrades_window(self, ring, stream):
        # max_attempt high: every retry hits the fault, so the window must
        # fall back to per-query Dijkstra — still answering everything.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="session", kind="transient", probability=1.0, max_attempt=99
                ),
            )
        )
        policy = RetryPolicy(max_attempts=2, base_delay_seconds=0.0, jitter=0.0)
        registry = MetricsRegistry()
        with use_registry(registry):
            service = BatchQueryService(
                ring,
                window_seconds=0.5,
                workers=1,
                fault_plan=plan,
                retry_policy=policy,
            )
            report = service.run(arrivals_for(stream))
        assert report.degraded_windows == report.busy_windows > 0
        assert report.answered_queries == len(stream)
        for w in report.windows:
            if w.answer is None:
                continue
            assert w.degraded
            for q, r in w.answer.answers:
                assert r.distance == pytest.approx(
                    dijkstra(ring, q.source, q.target).distance
                )
        counters = registry.snapshot().counters
        assert counters["service.degraded_windows"] == report.degraded_windows
        assert counters["resilience.retries_total"] == report.total_retries


class TestEngineFaultsThroughService:
    def test_windowed_chaos_matches_baseline(self, ring, stream, baseline):
        plan = FaultPlan(
            seed=2,
            specs=(
                FaultSpec(site="unit", kind="crash", probability=0.5),
                FaultSpec(site="pool", kind="break", units=(0,)),
            ),
        )
        with BatchQueryService(
            ring,
            window_seconds=0.5,
            workers=2,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3, base_delay_seconds=0.0, jitter=0.0),
        ) as service:
            report = service.run(arrivals_for(stream))
        assert answered_pairs(report) == answered_pairs(baseline)
        assert not report.dead_letters
        assert report.total_retries > 0

    def test_window_report_carries_engine_dead_letters(self, ring, stream):
        n = ring.num_vertices
        mixed = stream[:6] + [Query(n + 2, 1)]
        with BatchQueryService(ring, window_seconds=0.5, workers=2) as service:
            report = service.run(arrivals_for(mixed, windows=1))
        assert len(report.dead_letters) == 1
        [window] = [w for w in report.windows if w.queries]
        assert window.dead_letters == report.dead_letters
        assert window.answered_queries == 6


class TestChaosCli:
    def test_chaos_command_passes_end_to_end(self, capsys):
        from repro.cli import main

        code = main(
            [
                "chaos",
                "--scale",
                "tiny",
                "--size",
                "30",
                "--workers",
                "2",
                "--bad-queries",
                "2",
                "--windows",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "CHAOS OK" in out
        assert "dead letters  : 2" in out

    def test_chaos_command_serial_path(self, capsys):
        from repro.cli import main

        code = main(
            [
                "chaos",
                "--scale",
                "tiny",
                "--size",
                "24",
                "--workers",
                "1",
                "--bad-queries",
                "1",
                "--windows",
                "2",
            ]
        )
        assert code == 0
        assert "CHAOS OK" in capsys.readouterr().out

    def test_run_command_accepts_fault_plan(self, tmp_path, capsys):
        from repro.cli import main
        from repro.resilience import default_chaos_plan

        plan_path = tmp_path / "plan.json"
        default_chaos_plan(seed=1).write(plan_path)
        code = main(
            [
                "run",
                "--method",
                "slc-s",
                "--scale",
                "tiny",
                "--size",
                "40",
                "--workers",
                "2",
                "--fault-plan",
                str(plan_path),
                "--max-attempts",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "faults injected" in out


class TestReportAggregation:
    def test_service_report_totals(self, ring, stream):
        n = ring.num_vertices
        mixed = stream[:12] + [Query(n + 4, 2)]
        with BatchQueryService(ring, window_seconds=0.5, workers=0) as service:
            report = service.run(arrivals_for(mixed, windows=3))
        assert report.total_queries == len(mixed)
        assert report.answered_queries == 12
        assert len(report.dead_letters) == 1
        assert report.degraded_windows == 0
        assert math.isfinite(report.worst_window_seconds)
