"""Shared fixtures for the resilience suite."""

import pytest

from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer


@pytest.fixture(scope="module")
def decomposition(ring, ring_batch):
    return SearchSpaceDecomposer(ring).decompose(ring_batch)


@pytest.fixture(scope="module")
def answerer(ring):
    return LocalCacheAnswerer(ring, cache_bytes=64 * 1024, order="longest")


@pytest.fixture(scope="module")
def serial_answer(answerer, decomposition):
    return answerer.answer(decomposition, method="slc-s")
