"""Deadline primitive + cooperative cancellation in the search kernels."""

import math
import pickle

import pytest

from repro.exceptions import ConfigurationError, DeadlineExceededError
from repro.network.generators import grid_city
from repro.resilience import (
    CHECK_INTERVAL,
    Deadline,
    REASON_DEADLINE_EXCEEDED,
    active_deadline,
    set_deadline,
    use_deadline,
)
from repro.search.astar import a_star
from repro.search.dijkstra import bounded_ball, dijkstra, one_to_many


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        d = Deadline(2.0, clock=clock)
        assert d.remaining() == pytest.approx(2.0)
        clock.t = 1.5
        assert d.remaining() == pytest.approx(0.5)
        assert not d.expired()
        clock.t = 2.0
        assert d.expired()

    def test_check_raises_with_overrun(self):
        clock = FakeClock()
        d = Deadline(1.0, clock=clock)
        d.check("unit-test")  # not yet expired: no raise
        clock.t = 1.25
        with pytest.raises(DeadlineExceededError) as err:
            d.check("unit-test")
        assert err.value.where == "unit-test"
        assert err.value.overrun_seconds == pytest.approx(0.25)

    def test_negative_budget_clamps_to_immediate_expiry(self):
        clock = FakeClock(10.0)
        d = Deadline(-5.0, clock=clock)
        assert d.expired()
        assert d.remaining() == 0.0

    def test_at_classmethod_uses_absolute_instant(self):
        clock = FakeClock(3.0)
        d = Deadline.at(4.0, clock=clock)
        assert d.remaining() == pytest.approx(1.0)

    def test_error_survives_pickling(self):
        err = DeadlineExceededError("dijkstra", 0.5)
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, DeadlineExceededError)
        assert back.where == "dijkstra"
        assert back.overrun_seconds == 0.5

    def test_check_interval_is_power_of_two(self):
        assert CHECK_INTERVAL > 0
        assert CHECK_INTERVAL & (CHECK_INTERVAL - 1) == 0


class TestActiveDeadline:
    def test_default_is_none(self):
        assert active_deadline() is None

    def test_use_deadline_installs_and_restores(self):
        d = Deadline(10.0)
        with use_deadline(d):
            assert active_deadline() is d
        assert active_deadline() is None

    def test_use_deadline_nests(self):
        outer, inner = Deadline(10.0), Deadline(5.0)
        with use_deadline(outer):
            with use_deadline(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer

    def test_use_none_is_a_no_op_layer(self):
        d = Deadline(10.0)
        prev = set_deadline(d)
        try:
            with use_deadline(None):
                assert active_deadline() is None
            assert active_deadline() is d
        finally:
            set_deadline(prev)


@pytest.fixture(scope="module")
def city():
    return grid_city(8, 8, seed=3)


class TestKernelCancellation:
    """An already-expired deadline cuts every instrumented kernel off."""

    def expired(self):
        clock = FakeClock(100.0)
        return Deadline.at(1.0, clock=clock)

    def test_dijkstra_dict_path(self, city):
        with use_deadline(self.expired()):
            with pytest.raises(DeadlineExceededError):
                dijkstra(city, 0, 63)

    def test_dijkstra_csr_path(self):
        frozen_city = grid_city(8, 8, seed=3)
        frozen_city.freeze()
        with use_deadline(self.expired()):
            with pytest.raises(DeadlineExceededError):
                dijkstra(frozen_city, 0, 63)

    def test_a_star(self, city):
        with use_deadline(self.expired()):
            with pytest.raises(DeadlineExceededError):
                a_star(city, 0, 63)

    def test_bounded_ball(self, city):
        with use_deadline(self.expired()):
            with pytest.raises(DeadlineExceededError):
                bounded_ball(city, 0, 10.0)

    def test_one_to_many(self, city):
        with use_deadline(self.expired()):
            with pytest.raises(DeadlineExceededError):
                one_to_many(city, 0, [5, 9, 63])

    def test_generous_deadline_changes_nothing(self, city):
        plain = dijkstra(city, 0, 63)
        with use_deadline(Deadline(3600.0)):
            guarded = dijkstra(city, 0, 63)
        assert math.isclose(plain.distance, guarded.distance, rel_tol=1e-12)
        assert plain.path == guarded.path

    def test_no_deadline_still_searches(self, city):
        assert active_deadline() is None
        result = dijkstra(city, 0, 63)
        assert math.isfinite(result.distance)


class TestReasonConstant:
    def test_house_style(self):
        assert REASON_DEADLINE_EXCEEDED == "deadline-exceeded"
