"""CircuitBreaker: the three-state machine, driven by a fake clock."""

import pytest

from repro.exceptions import ConfigurationError
from repro.resilience import (
    BREAKER_STATE_VALUES,
    CLOSED,
    CircuitBreaker,
    HALF_OPEN,
    OPEN,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=2, cooldown_seconds=10.0, clock=clock)


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_at_threshold(self, breaker):
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self, breaker):
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_cooldown_leads_to_half_open_probe(self, breaker, clock):
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        # Exactly one probe slot.
        assert breaker.allow()
        assert not breaker.allow()

    def test_probe_success_closes(self, breaker, clock):
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_full_cooldown(self, breaker, clock):
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert breaker.state == OPEN
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN

    def test_reset_restores_pristine_closed(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.reset()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_state_gauge_values(self, breaker, clock):
        assert breaker.state_value == BREAKER_STATE_VALUES[CLOSED] == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state_value == 2
        clock.advance(11.0)
        assert breaker.state_value == 1

    def test_transitions_counted(self, breaker, clock):
        assert breaker.transitions == 0
        breaker.record_failure()
        breaker.record_failure()  # -> open
        clock.advance(11.0)
        _ = breaker.state  # -> half-open
        breaker.record_success()  # -> closed
        assert breaker.transitions == 3


class TestValidation:
    def test_threshold_positive(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)

    def test_cooldown_non_negative(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown_seconds=-1.0)
