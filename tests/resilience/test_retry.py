"""RetryPolicy: budget accounting, backoff shape, deterministic jitter."""

import pytest

from repro.exceptions import ConfigurationError
from repro.resilience import NO_RETRY, RetryPolicy


class TestBudget:
    def test_allows_retry_until_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows_retry(1)
        assert policy.allows_retry(2)
        assert not policy.allows_retry(3)

    def test_no_retry_constant(self):
        assert not NO_RETRY.allows_retry(1)
        assert NO_RETRY.delay_seconds(1) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay_seconds": -1.0},
            {"multiplier": 0.5},
            {"max_delay_seconds": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_delay_seconds=0.01,
            multiplier=2.0,
            max_delay_seconds=10.0,
            jitter=0.0,
        )
        assert list(policy.backoff_schedule()) == pytest.approx(
            [0.01, 0.02, 0.04, 0.08]
        )

    def test_delay_capped(self):
        policy = RetryPolicy(
            max_attempts=10,
            base_delay_seconds=1.0,
            multiplier=10.0,
            max_delay_seconds=2.0,
            jitter=0.0,
        )
        assert policy.delay_seconds(5) == 2.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.5, seed=3)
        a = policy.delay_seconds(2, key=7)
        b = policy.delay_seconds(2, key=7)
        assert a == b
        base = RetryPolicy(max_attempts=4, jitter=0.0).delay_seconds(2, key=7)
        assert base <= a <= base * 1.5 + 1e-12

    def test_jitter_decorrelates_keys(self):
        policy = RetryPolicy(max_attempts=4, jitter=1.0, seed=0)
        delays = {policy.delay_seconds(1, key=k) for k in range(16)}
        assert len(delays) > 1

    def test_attempts_are_one_based(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().delay_seconds(0)
