"""FaultPlan/FaultSpec: validation, determinism, serialisation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.resilience import (
    FaultDirective,
    FaultPlan,
    FaultSpec,
    default_chaos_plan,
)


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="network", kind="crash")

    def test_kind_must_match_site(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="pool", kind="crash")

    @pytest.mark.parametrize("probability", [-0.1, 1.5])
    def test_probability_bounds(self, probability):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="unit", kind="crash", probability=probability)

    def test_max_attempt_positive(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="unit", kind="crash", max_attempt=0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="unit", kind="hang", delay_seconds=-1.0)

    def test_unknown_dict_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec.from_dict({"site": "unit", "kind": "crash", "when": "always"})


class TestFiringRules:
    def test_certain_fault_always_fires_on_first_attempt(self):
        plan = FaultPlan(specs=(FaultSpec(site="unit", kind="crash"),))
        for unit in range(20):
            assert plan.unit_fault(unit, attempt=1) is not None

    def test_max_attempt_makes_faults_transient(self):
        plan = FaultPlan(specs=(FaultSpec(site="unit", kind="crash"),))
        assert plan.unit_fault(3, attempt=1) is not None
        assert plan.unit_fault(3, attempt=2) is None

    def test_units_filter(self):
        plan = FaultPlan(specs=(FaultSpec(site="unit", kind="hang", units=(2, 5)),))
        assert plan.unit_fault(2, 1) == FaultDirective("hang", 0.05)
        assert plan.unit_fault(3, 1) is None
        assert plan.unit_fault(5, 1) is not None

    def test_probabilistic_draws_are_deterministic(self):
        plan = FaultPlan(
            seed=9, specs=(FaultSpec(site="unit", kind="crash", probability=0.5),)
        )
        fired = [plan.unit_fault(i, 1) is not None for i in range(200)]
        again = [plan.unit_fault(i, 1) is not None for i in range(200)]
        assert fired == again
        # Roughly half fire: the draw really is per-index, not all-or-nothing.
        assert 60 < sum(fired) < 140

    def test_seed_changes_the_draw(self):
        spec = FaultSpec(site="unit", kind="crash", probability=0.5)
        a = [FaultPlan(seed=1, specs=(spec,)).unit_fault(i, 1) is not None for i in range(100)]
        b = [FaultPlan(seed=2, specs=(spec,)).unit_fault(i, 1) is not None for i in range(100)]
        assert a != b

    def test_first_matching_spec_wins(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="unit", kind="hang", units=(1,), delay_seconds=0.2),
                FaultSpec(site="unit", kind="crash"),
            )
        )
        assert plan.unit_fault(1, 1).kind == "hang"
        assert plan.unit_fault(0, 1).kind == "crash"

    def test_pool_and_session_sites(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="pool", kind="break", units=(0,)),
                FaultSpec(site="session", kind="transient", units=(1,)),
            )
        )
        assert plan.pool_fault(0) is True
        assert plan.pool_fault(1) is False
        assert plan.session_fault(1, attempt=1) is True
        assert plan.session_fault(1, attempt=2) is False  # transient by default
        assert plan.session_fault(0, attempt=1) is False


class TestSerialisation:
    def test_round_trip_through_dict(self):
        plan = default_chaos_plan(seed=11)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_round_trip_through_file(self, tmp_path):
        plan = default_chaos_plan(seed=4)
        path = tmp_path / "plan.json"
        plan.write(path)
        assert FaultPlan.from_file(path) == plan

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_file(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_file(tmp_path / "nope.json")

    def test_unknown_plan_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"seed": 0, "specs": []})
