"""WorkerWatchdog state machine: heartbeats, scans, restart budget."""

import pickle
import queue

import pytest

from repro.exceptions import ConfigurationError, WorkerError
from repro.resilience import (
    CircuitBreaker,
    WatchdogReport,
    WorkerHungError,
    WorkerWatchdog,
)
from repro.resilience.watchdog import HEARTBEAT_DONE, HEARTBEAT_START


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class FakeProc:
    def __init__(self, exitcode=None):
        self.exitcode = exitcode


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            WorkerWatchdog(hang_timeout=0)
        with pytest.raises(ConfigurationError):
            WorkerWatchdog(max_restarts=-1)
        with pytest.raises(ConfigurationError):
            WorkerWatchdog(poll_interval=0)


class TestScan:
    def test_healthy_pool(self):
        clock = FakeClock()
        wd = WorkerWatchdog(hang_timeout=5.0, clock=clock)
        wd.observe_start(11, unit=0)
        clock.t = 1.0
        report = wd.scan({11: FakeProc(), 12: FakeProc()})
        assert report.healthy
        assert report.describe() == "healthy"

    def test_dead_worker_detected_by_exitcode(self):
        wd = WorkerWatchdog(clock=FakeClock())
        report = wd.scan({11: FakeProc(exitcode=-9), 12: FakeProc()})
        assert not report.healthy
        assert report.dead == [(11, -9)]
        assert "pid=11" in report.describe()

    def test_hung_worker_detected_past_timeout(self):
        clock = FakeClock()
        wd = WorkerWatchdog(hang_timeout=5.0, clock=clock)
        wd.observe_start(21, unit=3)
        clock.t = 4.999
        assert wd.scan({21: FakeProc()}).healthy
        clock.t = 5.0
        report = wd.scan({21: FakeProc()})
        assert report.hung == [(21, 3, pytest.approx(5.0))]
        assert "unit=3" in report.describe()

    def test_done_beat_clears_busy_state(self):
        clock = FakeClock()
        wd = WorkerWatchdog(hang_timeout=5.0, clock=clock)
        wd.observe_start(21, unit=3)
        wd.observe_done(21)
        clock.t = 100.0
        assert wd.scan({21: FakeProc()}).healthy

    def test_idle_worker_never_hangs(self):
        clock = FakeClock()
        wd = WorkerWatchdog(hang_timeout=1.0, clock=clock)
        clock.t = 1000.0
        assert wd.scan({33: FakeProc()}).healthy

    def test_dead_worker_forgotten_from_busy(self):
        wd = WorkerWatchdog(clock=FakeClock())
        wd.observe_start(11, unit=0)
        wd.scan({11: FakeProc(exitcode=1)})
        assert wd.scan({}).healthy


class TestDrain:
    def test_drains_start_and_done_beats(self):
        clock = FakeClock()
        wd = WorkerWatchdog(hang_timeout=5.0, clock=clock)
        q = queue.Queue()
        q.put((41, 7, HEARTBEAT_START))
        q.put((42, 8, HEARTBEAT_START))
        q.put((41, 7, HEARTBEAT_DONE))
        assert wd.drain(q) == 3
        clock.t = 10.0
        report = wd.scan({41: FakeProc(), 42: FakeProc()})
        assert report.hung == [(42, 8, pytest.approx(10.0))]

    def test_drain_of_none_is_zero(self):
        assert WorkerWatchdog().drain(None) == 0


class TestRestartBudget:
    def test_restart_budget_bounds_rebuilds(self):
        wd = WorkerWatchdog(max_restarts=2)
        assert wd.note_restart() is True
        assert wd.note_restart() is True
        assert wd.note_restart() is False

    def test_storm_flag_after_budget_spent(self):
        wd = WorkerWatchdog(max_restarts=1, clock=FakeClock())
        assert not wd.scan({}).storm
        wd.note_restart()
        assert wd.scan({}).storm

    def test_storm_trips_breaker_to_open(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        assert breaker.allow()
        breaker.trip()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_forget_clears_busy_state(self):
        clock = FakeClock()
        wd = WorkerWatchdog(hang_timeout=1.0, clock=clock)
        wd.observe_start(5, unit=0)
        wd.forget()
        clock.t = 100.0
        assert wd.scan({5: FakeProc()}).healthy


class TestWorkerHungError:
    def test_is_a_worker_error(self):
        assert issubclass(WorkerHungError, WorkerError)

    def test_survives_pickling(self):
        err = WorkerHungError("dead worker(s) pid=9 exit=-9")
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, WorkerHungError)
        assert back.detail == err.detail

    def test_report_describe_round_trips_into_error(self):
        report = WatchdogReport(dead=[(9, -9)])
        err = WorkerHungError(report.describe())
        assert "pid=9" in str(err)
