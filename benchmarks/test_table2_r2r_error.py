"""Table II: average/max approximation error of R2R vs k-Path.

Paper shape: R2R's average error sits near 1 % and its maximum stays under
the configured bound (eta = 5 %); k-Path's error is unbounded and its
maximum reaches tens of percent.
"""

from conftest import publish

from repro.analysis import experiments as exp
from repro.analysis.metrics import error_report
from repro.core.coclustering import CoClusteringDecomposer
from repro.core.r2r import RegionToRegionAnswerer

ETA_PCT = 5.0


def test_table2_r2r_error(benchmark, env, sizes, r2r_suites):
    result = exp.run_table2(env, r2r_suites)
    publish(result)

    # R2R's maximum error never exceeds the eta bound, at any size.
    for max_err in result.series["r2r_max"]:
        assert max_err <= ETA_PCT + 1e-6

    # R2R's average error is in the paper's ~1 % ballpark at scale.
    assert result.series["r2r_avg"][-1] <= 2.0

    # k-Path is clearly worse on both metrics at the largest size, and its
    # maximum error exceeds what R2R's bound permits.
    assert result.series["kpath_avg"][-1] > result.series["r2r_avg"][-1]
    assert result.series["kpath_max"][-1] > ETA_PCT

    # Benchmark error computation (oracle + report) at a small size.
    queries = env.workload.batch(150, *env.r2r_band)
    decomposition = CoClusteringDecomposer(env.graph, eta=0.05).decompose(queries)
    answer = RegionToRegionAnswerer(env.graph, eta=0.05).answer(decomposition)
    benchmark.pedantic(
        lambda: error_report(env.graph, answer), rounds=3, iterations=1
    )
