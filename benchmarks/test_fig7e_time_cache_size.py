"""Figure 7-(e): SLC-S answering time as the cache budget shrinks.

Paper shape: query time lengthens as the cache size (and with it the hit
ratio) drops.  Sweep protocol shared with Fig 7-(c).
"""

from conftest import publish

from repro.analysis import experiments as exp
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer


def test_fig7e_time_vs_cache_size(benchmark, env, sizes, cache_suites):
    result = exp.run_fig7e(env, cache_suites)
    publish(result)

    largest = cache_suites[-1]
    fractions = sorted(largest.sweep_seconds)
    times = [largest.sweep_seconds[f] for f in fractions]
    assert all(t > 0 for t in times)

    # Starved budgets do more search work.  Wall times at these magnitudes
    # are noisy, so the hard assertion is on the deterministic VNN: the
    # deepest cut must search strictly more than the full budget.
    visited = [largest.sweep_visited[f] for f in fractions]
    assert visited[0] > visited[-1]
    assert visited == sorted(visited, reverse=True) or visited[0] > visited[-1]

    # Benchmark SLC-S under the tightest budget at a mid size.
    queries = env.workload.batch(sizes[len(sizes) // 2], *env.cache_band)
    decomposition = SearchSpaceDecomposer(env.graph).decompose(queries)
    budget = max(1, int(largest.gc_bytes * 0.1))
    answerer = LocalCacheAnswerer(env.graph, budget, order="longest")
    benchmark.pedantic(
        lambda: answerer.answer(decomposition), rounds=3, iterations=1
    )
