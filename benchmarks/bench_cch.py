"""CCH customize-vs-rebuild speedup budget, enforced.

The claim the customizable contraction hierarchy makes, measured
directly and failed (exit 1) when it does not hold: after
``REPRO_CCH_EPOCHS`` traffic epochs (default 3) perturb edge weights,
re-customizing the metric-independent order is at least
``REPRO_CCH_MIN_SPEEDUP``x (default 5) faster than a full legacy
:class:`ContractionHierarchy` rebuild at ``beijing_like("large")``.
Customized-index distances are asserted bit-equal to Dijkstra before
*and* after the epochs — a fast-but-wrong customization also exits 1.

Best-of-``ROUNDS`` timing for the customization pass and minimum-of-two
legacy builds, so scheduler noise cannot manufacture a pass.

The measurement body lives in :mod:`repro.bench.cch_customize` (shared
with the ``cch_customize`` harness suite — ``repro bench run --suite
cch_customize`` records the same numbers as schema'd JSON); this script
is the gating entry point.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_cch.py

Environment knobs: ``REPRO_CCH_SCALE`` (default ``large``),
``REPRO_CCH_MIN_SPEEDUP`` (default ``5.0``), ``REPRO_CCH_QUERIES``
(default ``40``), ``REPRO_CCH_ROUNDS`` (default ``3``),
``REPRO_CCH_EPOCHS`` (default ``3``).
"""

from __future__ import annotations

import sys

from repro.bench.cch_customize import run_cch_customize
from repro.bench.knobs import BenchConfigError, env_float, env_int, env_str


def main() -> int:
    try:
        outcome = run_cch_customize(
            scale=env_str("REPRO_CCH_SCALE", "large"),
            queries=env_int("REPRO_CCH_QUERIES", 40),
            rounds=env_int("REPRO_CCH_ROUNDS", 3),
            epochs=env_int("REPRO_CCH_EPOCHS", 3),
            min_speedup=env_float("REPRO_CCH_MIN_SPEEDUP", 5.0),
        )
    except BenchConfigError as err:
        print(f"BENCH CONFIG ERROR: {err}")
        return 2
    print(outcome.rendered)
    if outcome.failures:
        for failure in outcome.failures:
            print(f"BENCH FAILED: {failure}")
        return 1
    print("BENCH OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
