"""Figure 7-(f): region-to-region answering time of the five methods.

Paper shape: per-query A* is the slowest once the batch outgrows the
smallest size; Zigzag-Petal is relatively worst at the smallest size (few
1-N queries to amortise its petals) and improves with scale; the R2R
variants win at scale, with R2R-R at least matching R2R-S.
"""

from conftest import publish

from repro.analysis import experiments as exp
from repro.core.coclustering import CoClusteringDecomposer
from repro.core.r2r import RegionToRegionAnswerer


def test_fig7f_r2r_query_time(benchmark, env, sizes, r2r_suites):
    result = exp.run_fig7f(env, r2r_suites)
    publish(result)
    vnn = exp.run_fig7f_vnn(env, r2r_suites)
    publish(vnn)

    # Deterministic shape (VNN): the batch methods search less than A*.
    vnn_last = {m: s[-1] for m, s in vnn.series.items()}
    assert vnn_last["zigzag-petal"] < vnn_last["astar"]
    assert vnn_last["r2r-s"] < vnn_last["astar"]
    assert vnn_last["r2r-r"] < vnn_last["astar"]

    for method, series in result.series.items():
        assert all(t > 0 for t in series), method

    last = {m: s[-1] for m, s in result.series.items()}
    # The region methods beat per-query A* at scale.  Wall times carry
    # scheduler noise across a full suite run, so the claim is asserted on
    # the best R2R variant (the paper reports R2R-R slightly ahead) with
    # slack; the deterministic VNN assertions above are the hard check.
    assert min(last["r2r-s"], last["r2r-r"]) <= last["astar"] * 1.05
    assert last["k-path"] <= last["astar"] * 1.05

    # Zigzag-Petal shares computation, so at scale it does not lose to
    # per-query A* by more than timing noise.  (The paper's stronger claim
    # — petal *slowest* at the smallest size, improving with |Q| — needs a
    # workload where small batches contain almost no 1-N queries; our
    # hotspot workload has shareable petals at every size, so the ratio is
    # flat rather than improving.  Documented in EXPERIMENTS.md.)
    assert last["zigzag-petal"] <= last["astar"] * 1.3

    # Benchmark R2R-S on the largest long-band batch.
    queries = env.workload.batch(sizes[-1], *env.r2r_band)
    decomposition = CoClusteringDecomposer(env.graph, eta=0.05).decompose(queries)
    answerer = RegionToRegionAnswerer(env.graph, eta=0.05, selection="longest")
    benchmark.pedantic(
        lambda: answerer.answer(decomposition), rounds=3, iterations=1
    )
