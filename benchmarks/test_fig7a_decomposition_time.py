"""Figure 7-(a): decomposition time of the three methods vs batch size.

Paper shape: all methods grow with |Q|; Co-Clustering is the fastest
(bounded-radius scans); even the slowest method stays in interactive range
(the paper's worst case is 4.6 s at 1M queries — our scaled worst case must
stay well under a second).

Known deviation (documented in EXPERIMENTS.md): the paper has Zigzag as
the slowest method; in pure Python the SSE's per-cluster numpy ellipse
rasterisation carries a constant factor that puts it above our efficient
Zigzag implementation at these scales.
"""

from conftest import publish

from repro.analysis import experiments as exp
from repro.core.coclustering import CoClusteringDecomposer


def test_fig7a_decomposition_time(benchmark, env, sizes):
    result = exp.run_fig7a(env, sizes)
    publish(result)

    for series in result.series.values():
        assert len(series) == len(sizes)
        assert all(t >= 0.0 for t in series)
        # Growth with |Q|: the largest size costs more than the smallest.
        assert series[-1] > series[0]

    # Co-Clustering is the fastest method at the largest size (paper's
    # headline ordering claim for Fig 7-(a)).
    last = {name: series[-1] for name, series in result.series.items()}
    assert last["co-clustering"] <= min(last.values()) + 1e-9

    # Scaled counterpart of "4.6 s at 1M": every method finishes fast.
    assert max(last.values()) < 2.0

    # Benchmark the fastest decomposer at the largest size.
    queries = env.workload.batch(sizes[-1])
    decomposer = CoClusteringDecomposer(env.graph, eta=0.05)
    benchmark.pedantic(
        lambda: decomposer.decompose(queries), rounds=3, iterations=1
    )
