"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these probe the knobs the paper fixes
implicitly, so a downstream user knows what each one buys:

* generalized-A* heuristic mode (offset-representative vs min-target),
* SSE merge threshold (overlap coefficient),
* the co-clustering Euclidean-detour constant (the paper's 1.2x),
* the petal angle threshold delta,
* super-vertex snapping for the Local Cache,
* Theorem 1's region radius extension (r* vs 2r*).

The measurement bodies live in :mod:`repro.bench.ablations` — the same
code the ``ablations`` harness suite records as schema'd JSON — so these
tests assert the paper-shape claims on exactly what the harness measures.
"""

from conftest import RESULTS_DIR

from repro.bench import ablations as ab


def save(outcome) -> None:
    print()
    print(outcome.rendered)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{outcome.name}.txt").write_text(
        outcome.rendered + "\n", encoding="utf-8"
    )


def test_ablation_generalized_astar_heuristic(benchmark, env):
    """Offset-representative vs min-target: VNN and wall time per petal."""
    from repro.search.generalized_astar import generalized_a_star

    outcome = ab.run_gen_astar(env)
    save(outcome)
    # Both informed modes must beat the uninformed one on VNN.
    vnn = {row[0]: row[1] for row in outcome.rows}
    assert vnn["representative"] < vnn["zero"]
    assert vnn["min-target"] <= vnn["representative"]

    queries = env.fresh_workload(901).batch(40)
    source, group = max(queries.by_source().items(), key=lambda kv: len(kv[1]))
    benchmark.pedantic(
        lambda: generalized_a_star(env.graph, source, [q.target for q in group]),
        rounds=5,
        iterations=1,
    )


def test_ablation_sse_merge_threshold(benchmark, env):
    """Lower overlap thresholds merge more: fewer, larger clusters."""
    from repro.core.search_space import SearchSpaceDecomposer

    outcome = ab.run_sse_merge(env)
    save(outcome)
    counts = {row[0]: row[1] for row in outcome.rows}
    assert counts[0.2] <= counts[1.0]

    queries = env.fresh_workload(902).batch(800, *env.cache_band)
    decomposer = SearchSpaceDecomposer(env.graph, merge_threshold=0.5)
    benchmark.pedantic(lambda: decomposer.decompose(queries), rounds=3, iterations=1)


def test_ablation_cocluster_detour_ratio(benchmark, env):
    """The paper's 1.2x Euclidean calibration: clusters vs error safety."""
    from repro.core.coclustering import CoClusteringDecomposer

    outcome = ab.run_detour_ratio(env)
    save(outcome)
    # Wider radii merge more clusters; the answering-side check keeps the
    # bound regardless of the decomposition-side calibration.
    clusters = [row[1] for row in outcome.rows]
    assert clusters == sorted(clusters, reverse=True)
    for row in outcome.rows:
        assert float(row[2]) <= 5.0 + 1e-6

    queries = env.fresh_workload(903).batch(600, *env.r2r_band)
    decomposer = CoClusteringDecomposer(env.graph, eta=0.05)
    benchmark.pedantic(lambda: decomposer.decompose(queries), rounds=3, iterations=1)


def test_ablation_delta_angle(benchmark, env):
    """Petal angle delta: wider petals, fewer clusters, weaker coherence."""
    from repro.core.zigzag import ZigzagDecomposer

    outcome = ab.run_delta_angle(env)
    save(outcome)
    counts = [row[1] for row in outcome.rows]
    assert counts[0] >= counts[-1]  # wider angle -> fewer clusters

    queries = env.fresh_workload(904).batch(800, *env.cache_band)
    decomposer = ZigzagDecomposer(env.graph)
    benchmark.pedantic(lambda: decomposer.decompose(queries), rounds=3, iterations=1)


def test_ablation_super_vertices(benchmark, env):
    """Super-vertex snapping trades exactness for hit ratio (Section V-A2)."""
    from repro.core.local_cache import LocalCacheAnswerer
    from repro.core.search_space import SearchSpaceDecomposer

    outcome = ab.run_super_vertices(env)
    save(outcome)
    ratios = [float(row[1]) for row in outcome.rows]
    assert ratios == sorted(ratios)  # snapping only helps the hit ratio

    queries = env.fresh_workload(905).batch(800, *env.cache_band)
    decomposition = SearchSpaceDecomposer(env.graph).decompose(queries)
    benchmark.pedantic(
        lambda: LocalCacheAnswerer(env.graph, 10**6).answer(decomposition),
        rounds=3,
        iterations=1,
    )


def test_ablation_search_space_fidelity(benchmark, env):
    """How faithful is the Figure 2 ellipse model to real searches?

    The paper asserts the model; this measures it: recall = fraction of
    the real A* search's grid cells the oracle predicted, precision = how
    much of the prediction the search used.  Reported per query-length
    band — the model is derived for unobstructed searches, so short
    detour-heavy queries are where it leaks.
    """
    outcome = ab.run_oracle_fidelity(env)
    save(outcome)
    # The model must capture a substantial share of every band's search.
    recalls = [
        m.value for key, m in outcome.metrics.items() if key.startswith("recall[")
    ]
    assert min(recalls) > 0.3

    from repro.core.search_space import SearchSpaceOracle

    oracle = SearchSpaceOracle(env.graph)
    queries = env.fresh_workload(908).batch(30)
    benchmark.pedantic(
        lambda: [oracle.estimate(q) for q in queries], rounds=3, iterations=1
    )


def test_ablation_dbscan_vs_ad_petals(benchmark, env):
    """Section IV-A1's rejected strawman, measured.

    DBSCAN clusters endpoints by density alone, so its clusters' *angular
    spread* — the predictor of generalized-A* sharing, which the paper says
    degrades past ~30 degrees — is far wider than the delta-bounded AD
    petals, and answering its clusters with 1-N batch search costs more
    VNN.
    """
    from repro.core.dbscan import DBSCANDecomposer

    outcome = ab.run_dbscan_strawman(env)
    save(outcome)
    # The paper's argument, measured: density clusters are directionally
    # much wider than the delta-bounded petals.
    assert (
        outcome.metrics["spread_deg[dbscan]"].value
        > outcome.metrics["spread_deg[ad-petals]"].value
    )

    queries = env.fresh_workload(907).batch(600, *env.cache_band)
    min_x, min_y, max_x, max_y = env.graph.extent()
    eps = max(max_x - min_x, max_y - min_y) * 0.05
    decomposer = DBSCANDecomposer(env.graph, eps=eps)
    benchmark.pedantic(lambda: decomposer.decompose(queries), rounds=3, iterations=1)


def test_ablation_region_radius(benchmark, env):
    """Theorem 1: pushing the region from r* to 2r* doubles the reach.

    Measured directly: the 2r* ball around a representative contains at
    least as many candidate vertices as the conservative r* ball, while the
    answering-side error stays bounded (checked by the R2R tests).
    """
    from repro.search.dijkstra import bounded_ball

    outcome = ab.run_region_radius(env)
    save(outcome)
    assert (
        outcome.metrics["candidates[2r*]"].value
        >= outcome.metrics["candidates[r*]"].value
    )

    q = env.fresh_workload(906).batch(60, *env.r2r_band)[0]
    benchmark.pedantic(
        lambda: bounded_ball(env.graph, q.source, 2.0), rounds=5, iterations=1
    )
