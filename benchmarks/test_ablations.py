"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper — these probe the knobs the paper fixes
implicitly, so a downstream user knows what each one buys:

* generalized-A* heuristic mode (offset-representative vs min-target),
* SSE merge threshold (overlap coefficient),
* the co-clustering Euclidean-detour constant (the paper's 1.2x),
* the petal angle threshold delta,
* super-vertex snapping for the Local Cache,
* Theorem 1's region radius extension (r* vs 2r*).
"""

import time

from conftest import RESULTS_DIR

from repro.analysis.tables import render_table
from repro.baselines.one_by_one import OneByOneAnswerer
from repro.core.coclustering import CoClusteringDecomposer
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.r2r import RegionToRegionAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.core.wspd import guaranteed_radius
from repro.core.zigzag import ZigzagDecomposer
from repro.queries.query import QuerySet
from repro.search.dijkstra import bounded_ball, dijkstra
from repro.search.generalized_astar import generalized_a_star


def save(name: str, rendered: str) -> None:
    print()
    print(rendered)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")


def test_ablation_generalized_astar_heuristic(benchmark, env):
    """Offset-representative vs min-target: VNN and wall time per petal."""
    workload = env.fresh_workload(901)
    rows = []
    batches = [workload.batch(40) for _ in range(4)]
    for mode in ("representative", "min-target", "zero"):
        visited = 0
        t0 = time.perf_counter()
        for batch in batches:
            for source, group in batch.by_source().items():
                _, v = generalized_a_star(
                    env.graph, source, [q.target for q in group], mode=mode
                )
                visited += v
        rows.append([mode, visited, time.perf_counter() - t0])
    save(
        "ablation_gen_astar",
        render_table(["heuristic mode", "VNN", "seconds"], rows,
                     title="Ablation: generalized-A* heuristic mode"),
    )
    # Both informed modes must beat the uninformed one on VNN.
    vnn = {r[0]: r[1] for r in rows}
    assert vnn["representative"] < vnn["zero"]
    assert vnn["min-target"] <= vnn["representative"]

    queries = batches[0]
    source, group = max(queries.by_source().items(), key=lambda kv: len(kv[1]))
    benchmark.pedantic(
        lambda: generalized_a_star(env.graph, source, [q.target for q in group]),
        rounds=5,
        iterations=1,
    )


def test_ablation_sse_merge_threshold(benchmark, env):
    """Lower overlap thresholds merge more: fewer, larger clusters."""
    workload = env.fresh_workload(902)
    queries = workload.batch(800, *env.cache_band)
    rows = []
    counts = {}
    for threshold in (0.2, 0.4, 0.6, 0.8, 1.0):
        d = SearchSpaceDecomposer(env.graph, merge_threshold=threshold).decompose(
            queries
        )
        counts[threshold] = len(d)
        rows.append([threshold, len(d), max(d.cluster_sizes), d.elapsed_seconds])
    save(
        "ablation_sse_merge",
        render_table(
            ["overlap threshold", "clusters", "largest", "seconds"],
            rows,
            title="Ablation: SSE merge threshold",
        ),
    )
    assert counts[0.2] <= counts[1.0]

    decomposer = SearchSpaceDecomposer(env.graph, merge_threshold=0.5)
    benchmark.pedantic(lambda: decomposer.decompose(queries), rounds=3, iterations=1)


def test_ablation_cocluster_detour_ratio(benchmark, env):
    """The paper's 1.2x Euclidean calibration: clusters vs error safety."""
    workload = env.fresh_workload(903)
    queries = workload.batch(600, *env.r2r_band)
    exact = {
        q: dijkstra(env.graph, q.source, q.target).distance
        for q in queries.deduplicated()
    }
    rows = []
    for ratio in (1.0, 1.2, 1.5, 2.0):
        d = CoClusteringDecomposer(env.graph, eta=0.05, detour_ratio=ratio).decompose(
            queries
        )
        answer = RegionToRegionAnswerer(env.graph, eta=0.05).answer(d)
        max_err = 0.0
        for q, r in answer.answers:
            truth = exact[q]
            if truth > 0:
                max_err = max(max_err, (r.distance - truth) / truth)
        rows.append([ratio, len(d), f"{100 * max_err:.3f}"])
    save(
        "ablation_detour_ratio",
        render_table(
            ["detour ratio", "clusters", "max error %"],
            rows,
            title="Ablation: co-clustering detour constant",
        ),
    )
    # Wider radii merge more clusters; the answering-side check keeps the
    # bound regardless of the decomposition-side calibration.
    clusters = [r[1] for r in rows]
    assert clusters == sorted(clusters, reverse=True)
    for row in rows:
        assert float(row[2]) <= 5.0 + 1e-6

    decomposer = CoClusteringDecomposer(env.graph, eta=0.05)
    benchmark.pedantic(lambda: decomposer.decompose(queries), rounds=3, iterations=1)


def test_ablation_delta_angle(benchmark, env):
    """Petal angle delta: wider petals, fewer clusters, weaker coherence."""
    workload = env.fresh_workload(904)
    queries = workload.batch(800, *env.cache_band)
    rows = []
    counts = []
    for delta in (10.0, 30.0, 60.0, 120.0):
        d = ZigzagDecomposer(env.graph, delta=delta).decompose(queries)
        counts.append(len(d))
        rows.append([delta, len(d), max(d.cluster_sizes)])
    save(
        "ablation_delta",
        render_table(
            ["delta (deg)", "clusters", "largest"],
            rows,
            title="Ablation: Zigzag petal angle threshold",
        ),
    )
    assert counts[0] >= counts[-1]  # wider angle -> fewer clusters

    decomposer = ZigzagDecomposer(env.graph)
    benchmark.pedantic(lambda: decomposer.decompose(queries), rounds=3, iterations=1)


def test_ablation_super_vertices(benchmark, env):
    """Super-vertex snapping trades exactness for hit ratio (Section V-A2)."""
    workload = env.fresh_workload(905)
    queries = workload.batch(800, *env.cache_band)
    decomposition = SearchSpaceDecomposer(env.graph).decompose(queries)
    rows = []
    ratios = []
    for radius in (0.0, 0.5, 1.0, 2.0):
        answerer = LocalCacheAnswerer(
            env.graph, 10**6, order="longest", super_snap_radius=radius
        )
        answer = answerer.answer(decomposition)
        ratios.append(answer.hit_ratio)
        inexact = sum(1 for _, r in answer.answers if not r.exact)
        rows.append([radius, f"{answer.hit_ratio:.3f}", inexact])
    save(
        "ablation_super_vertex",
        render_table(
            ["snap radius (km)", "hit ratio", "inexact answers"],
            rows,
            title="Ablation: super-vertex snapping",
        ),
    )
    assert ratios == sorted(ratios)  # snapping only helps the hit ratio

    benchmark.pedantic(
        lambda: LocalCacheAnswerer(env.graph, 10**6).answer(decomposition),
        rounds=3,
        iterations=1,
    )


def test_ablation_search_space_fidelity(benchmark, env):
    """How faithful is the Figure 2 ellipse model to real searches?

    The paper asserts the model; this measures it: recall = fraction of
    the real A* search's grid cells the oracle predicted, precision = how
    much of the prediction the search used.  Reported per query-length
    band — the model is derived for unobstructed searches, so short
    detour-heavy queries are where it leaks.
    """
    from repro.analysis.validation import summarize_coverage, validate_search_space

    workload = env.fresh_workload(908)
    rows = []
    recalls = {}
    for band_name, (lo, hi) in (
        ("short", (0.0, env.cache_band[1] / 2)),
        ("cache", env.cache_band),
        ("long", env.r2r_band),
    ):
        queries = workload.batch(60, min_dist=lo, max_dist=hi)
        reports = validate_search_space(env.graph, list(queries))
        summary = summarize_coverage(reports)
        recalls[band_name] = summary["recall"]
        rows.append(
            [
                band_name,
                f"{summary['recall']:.3f}",
                f"{summary['precision']:.3f}",
                f"{summary['inflation']:.2f}",
            ]
        )
    save(
        "ablation_oracle_fidelity",
        render_table(
            ["band", "recall", "precision", "predicted/actual"],
            rows,
            title="Validation: search-space oracle vs real A* (Figure 2 model)",
        ),
    )
    # The model must capture a substantial share of every band's search.
    assert min(recalls.values()) > 0.3

    from repro.core.search_space import SearchSpaceOracle

    oracle = SearchSpaceOracle(env.graph)
    queries = workload.batch(30)
    benchmark.pedantic(
        lambda: [oracle.estimate(q) for q in queries], rounds=3, iterations=1
    )


def test_ablation_dbscan_vs_ad_petals(benchmark, env):
    """Section IV-A1's rejected strawman, measured.

    DBSCAN clusters endpoints by density alone, so its clusters' *angular
    spread* — the predictor of generalized-A* sharing, which the paper says
    degrades past ~30 degrees — is far wider than the delta-bounded AD
    petals, and answering its clusters with 1-N batch search costs more
    VNN.
    """
    from repro.core.dbscan import DBSCANDecomposer, angular_spread
    from repro.core.zigzag import ZigzagDecomposer
    from repro.search.generalized_astar import generalized_a_star

    workload = env.fresh_workload(907)
    queries = workload.batch(600, *env.cache_band)

    min_x, min_y, max_x, max_y = env.graph.extent()
    eps = max(max_x - min_x, max_y - min_y) * 0.05
    db = DBSCANDecomposer(env.graph, eps=eps, min_points=3).decompose(queries)
    ad = ZigzagDecomposer(env.graph, absorb_singletons=False).decompose(queries)

    def mean_multi_spread(decomposition):
        spreads = [angular_spread(env.graph, c) for c in decomposition if len(c) > 1]
        return sum(spreads) / len(spreads) if spreads else 0.0

    def batch_vnn(decomposition):
        total = 0
        for cluster in decomposition:
            for source, group in cluster.as_query_set().by_source().items():
                _, v = generalized_a_star(
                    env.graph, source, [q.target for q in group]
                )
                total += v
        return total

    rows = [
        ["dbscan", len(db), f"{mean_multi_spread(db):.1f}", batch_vnn(db)],
        ["ad-petals", len(ad), f"{mean_multi_spread(ad):.1f}", batch_vnn(ad)],
    ]
    save(
        "ablation_dbscan",
        render_table(
            ["decomposition", "clusters", "mean spread (deg)", "batch VNN"],
            rows,
            title="Ablation: DBSCAN strawman vs AD petals (Section IV-A1)",
        ),
    )
    # The paper's argument, measured: density clusters are directionally
    # much wider than the delta-bounded petals.
    assert mean_multi_spread(db) > mean_multi_spread(ad)

    decomposer = DBSCANDecomposer(env.graph, eps=eps)
    benchmark.pedantic(lambda: decomposer.decompose(queries), rounds=3, iterations=1)


def test_ablation_region_radius(benchmark, env):
    """Theorem 1: pushing the region from r* to 2r* doubles the reach.

    Measured directly: the 2r* ball around a representative contains at
    least as many candidate vertices as the conservative r* ball, while the
    answering-side error stays bounded (checked by the R2R tests).
    """
    workload = env.fresh_workload(906)
    queries = workload.batch(60, *env.r2r_band)
    rows = []
    total_small = total_big = 0
    for q in list(queries)[:20]:
        d = dijkstra(env.graph, q.source, q.target).distance
        r_star = guaranteed_radius(0.05, d)
        small, _ = bounded_ball(env.graph, q.source, r_star)
        big, _ = bounded_ball(env.graph, q.source, 2 * r_star)
        total_small += len(small)
        total_big += len(big)
    rows.append(["r*", total_small])
    rows.append(["2r* (Theorem 1)", total_big])
    save(
        "ablation_region_radius",
        render_table(
            ["region radius", "candidate vertices (20 reps)"],
            rows,
            title="Ablation: R2R region radius",
        ),
    )
    assert total_big >= total_small

    q = queries[0]
    benchmark.pedantic(
        lambda: bounded_ball(env.graph, q.source, 2.0), rounds=5, iterations=1
    )
