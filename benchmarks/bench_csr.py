"""Frozen-CSR kernel speedup and spawn-payload budget, enforced.

Two claims the freeze layer makes, measured directly and failed (exit 1)
when they do not hold:

1. **Kernel speedup** — point-to-point Dijkstra through the CSR kernels is
   at least ``REPRO_CSR_MIN_SPEEDUP``x (default 2) faster than the
   dict-graph implementation on the largest bundled synthetic network
   (``xlarge``, ~20.7k vertices).  Medians of best-of-``ROUNDS`` runs over
   a fixed query set, so scheduler noise cannot manufacture a pass.
2. **Spawn payload** — the pool-initialiser payload with a shared graph is
   a :class:`CSRHandle` (segment names + metadata), hundreds of bytes,
   instead of the pickled graph (MBs at scale).  Asserted < 1 KB and
   < 1/100 of the pickle.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_csr.py

Environment knobs: ``REPRO_CSR_SCALE`` (default ``xlarge``),
``REPRO_CSR_MIN_SPEEDUP`` (default ``2.0``), ``REPRO_CSR_PAIRS``
(default ``40``), ``REPRO_CSR_ROUNDS`` (default ``5``).
"""

from __future__ import annotations

import os
import pickle
import random
import statistics
import sys
import time

from repro.network.csr import share_csr
from repro.network.generators import beijing_like
from repro.search.dijkstra import dijkstra

SCALE = os.environ.get("REPRO_CSR_SCALE", "xlarge")
MIN_SPEEDUP = float(os.environ.get("REPRO_CSR_MIN_SPEEDUP", "2.0"))
PAIRS = int(os.environ.get("REPRO_CSR_PAIRS", "40"))
ROUNDS = int(os.environ.get("REPRO_CSR_ROUNDS", "5"))


def time_queries(graph, pairs, rounds):
    """Median over ``rounds`` of the total wall time for ``pairs``."""
    totals = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        for s, t in pairs:
            dijkstra(graph, s, t)
        totals.append(time.perf_counter() - t0)
    return statistics.median(totals)


def main() -> int:
    print(f"network        : beijing_like({SCALE!r})")
    graph = beijing_like(SCALE, seed=0)
    print(f"size           : {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    rng = random.Random(99)
    n = graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(PAIRS)]

    # Dict path: a copy that is never frozen, so dispatch cannot switch.
    dict_graph = graph.copy()
    t0 = time.perf_counter()
    csr = graph.freeze()
    freeze_seconds = time.perf_counter() - t0
    csr.forward_rows()  # decode outside the timed region, like a real run
    csr.reverse_rows()
    print(f"freeze         : {freeze_seconds * 1e3:.1f} ms "
          f"({csr.nbytes / 1e6:.1f} MB of flat buffers)")

    # Warm both paths once, then interleave measurements.
    time_queries(dict_graph, pairs[:5], 1)
    time_queries(graph, pairs[:5], 1)
    dict_seconds = time_queries(dict_graph, pairs, ROUNDS)
    csr_seconds = time_queries(graph, pairs, ROUNDS)

    # Sanity: identical answers on a sample (the full differential suite
    # lives in tests/search/test_csr_kernels.py).
    for s, t in pairs[:5]:
        assert dijkstra(graph, s, t).distance == dijkstra(dict_graph, s, t).distance

    speedup = dict_seconds / csr_seconds if csr_seconds > 0 else float("inf")
    print(f"dict kernel    : {dict_seconds * 1e3:.1f} ms / {PAIRS} queries")
    print(f"csr kernel     : {csr_seconds * 1e3:.1f} ms / {PAIRS} queries")
    print(f"speedup        : {speedup:.2f}x (required >= {MIN_SPEEDUP:.2f}x)")

    # Spawn-payload budget: handle vs pickled graph.
    graph_payload = len(pickle.dumps((graph, "local-cache", {})))
    shared = share_csr(csr)
    try:
        handle_payload = len(pickle.dumps((shared.handle, "local-cache", {})))
        t0 = time.perf_counter()
        from repro.network.csr import CSRGraph

        attached = CSRGraph.attach(shared.handle)
        attach_seconds = time.perf_counter() - t0
        attached.release()
    finally:
        shared.close()
    t0 = time.perf_counter()
    pickle.loads(pickle.dumps(graph))
    unpickle_seconds = time.perf_counter() - t0
    print(f"spawn payload  : {handle_payload} B (handle) vs "
          f"{graph_payload} B (pickled graph)")
    print(f"worker startup : attach {attach_seconds * 1e3:.2f} ms vs "
          f"pickle round-trip {unpickle_seconds * 1e3:.1f} ms")

    failures = []
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"CSR speedup {speedup:.2f}x below the {MIN_SPEEDUP:.2f}x budget"
        )
    if handle_payload >= 1024:
        failures.append(f"handle payload {handle_payload} B >= 1 KB")
    if handle_payload * 100 > graph_payload:
        failures.append(
            f"handle payload {handle_payload} B not < 1/100 of the "
            f"{graph_payload} B pickled graph"
        )
    if failures:
        for failure in failures:
            print(f"BENCH FAILED: {failure}")
        return 1
    print("BENCH OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
