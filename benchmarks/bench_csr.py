"""Frozen-CSR kernel speedup and spawn-payload budget, enforced.

Two claims the freeze layer makes, measured directly and failed (exit 1)
when they do not hold:

1. **Kernel speedup** — point-to-point Dijkstra through the CSR kernels is
   at least ``REPRO_CSR_MIN_SPEEDUP``x (default 2) faster than the
   dict-graph implementation on the largest bundled synthetic network
   (``xlarge``, ~20.7k vertices).  Medians of best-of-``ROUNDS`` runs over
   a fixed query set, so scheduler noise cannot manufacture a pass.
2. **Spawn payload** — the pool-initialiser payload with a shared graph is
   a :class:`CSRHandle` (segment names + metadata), hundreds of bytes,
   instead of the pickled graph (MBs at scale).  Asserted < 1 KB and
   < 1/100 of the pickle.

The measurement body lives in :mod:`repro.bench.csr` (shared with the
``csr`` harness suite — ``repro bench run --suite csr`` records the same
numbers as schema'd JSON); this script is the gating entry point.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_csr.py

Environment knobs: ``REPRO_CSR_SCALE`` (default ``xlarge``),
``REPRO_CSR_MIN_SPEEDUP`` (default ``2.0``), ``REPRO_CSR_PAIRS``
(default ``40``), ``REPRO_CSR_ROUNDS`` (default ``5``).
"""

from __future__ import annotations

import sys

from repro.bench.csr import run_csr
from repro.bench.knobs import BenchConfigError, env_float, env_int, env_str


def main() -> int:
    try:
        outcome = run_csr(
            scale=env_str("REPRO_CSR_SCALE", "xlarge"),
            pairs=env_int("REPRO_CSR_PAIRS", 40),
            rounds=env_int("REPRO_CSR_ROUNDS", 5),
            min_speedup=env_float("REPRO_CSR_MIN_SPEEDUP", 2.0),
        )
    except BenchConfigError as err:
        print(f"BENCH CONFIG ERROR: {err}")
        return 2
    print(outcome.rendered)
    if outcome.failures:
        for failure in outcome.failures:
            print(f"BENCH FAILED: {failure}")
        return 1
    print("BENCH OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
