"""Vectorized numpy batch-kernel speedup budget, enforced.

The claim the numpy kernel family makes, measured directly and failed
(exit 1) when it does not hold: answering a ``REPRO_CSR_NP_BATCH``-query
batch (default 64) through :func:`np_batch_dijkstra` is at least
``REPRO_CSR_NP_MIN_SPEEDUP``x (default 5) faster than the per-query
dict-graph Dijkstra loop on the largest bundled synthetic network
(``xlarge``, ~20.7k vertices).  Best-of-``ROUNDS`` timing over a fixed
query set, so scheduler noise cannot manufacture a pass; answers are
verified bit-identical before anything is timed.

Also reported (informational, not gated): the joint 4-ball region
collection R2R issues per representative and LC's one-to-many boundary
sweep.

The measurement body lives in :mod:`repro.bench.csr_np` (shared with the
``csr_np`` harness suite — ``repro bench run --suite csr_np`` records the
same numbers as schema'd JSON); this script is the gating entry point.
Exits 0 with a notice when numpy is not installed — the kernels are an
optional extra and their absence is not a CI failure.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_csr_np.py

Environment knobs: ``REPRO_CSR_NP_SCALE`` (default ``xlarge``),
``REPRO_CSR_NP_MIN_SPEEDUP`` (default ``5.0``), ``REPRO_CSR_NP_BATCH``
(default ``64``), ``REPRO_CSR_NP_ROUNDS`` (default ``5``).
"""

from __future__ import annotations

import sys

from repro.bench.csr_np import run_csr_np
from repro.bench.knobs import BenchConfigError, env_float, env_int, env_str


def main() -> int:
    try:
        outcome = run_csr_np(
            scale=env_str("REPRO_CSR_NP_SCALE", "xlarge"),
            batch=env_int("REPRO_CSR_NP_BATCH", 64),
            rounds=env_int("REPRO_CSR_NP_ROUNDS", 5),
            min_speedup=env_float("REPRO_CSR_NP_MIN_SPEEDUP", 5.0),
        )
    except BenchConfigError as err:
        print(f"BENCH CONFIG ERROR: {err}")
        return 2
    print(outcome.rendered)
    if outcome.failures:
        for failure in outcome.failures:
            print(f"BENCH FAILED: {failure}")
        return 1
    print("BENCH OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
