"""Shared benchmark fixtures.

Every benchmark reproduces one artefact of the paper's Section VI on the
``medium`` Beijing-like network with the scaled size series documented in
DESIGN.md.  Heavy computations (the cache suite, the R2R suite) are shared
across the benchmark files through session-scoped fixtures, and each file
additionally times its core operation through the ``benchmark`` fixture so
``pytest benchmarks/ --benchmark-only`` produces a timing table.

Environment knobs:

* ``REPRO_BENCH_SCALE``  — network preset (default ``medium``)
* ``REPRO_BENCH_SIZES``  — comma-separated batch sizes (default
  ``100,300,900,1800``)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis import experiments as exp

RESULTS_DIR = Path(__file__).parent / "results"

#: Fractions for the cache-size sweep.  The paper sweeps 70-100 % of |GC|;
#: at reproduction scale only deeper cuts bind (see EXPERIMENTS.md), so the
#: sweep reaches down to 10 %.
SWEEP_FRACTIONS = (0.1, 0.2, 0.4, 0.7, 1.0)


def bench_sizes():
    raw = os.environ.get("REPRO_BENCH_SIZES", "100,300,900,1800")
    return tuple(int(p) for p in raw.split(",") if p.strip())


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "medium")


@pytest.fixture(scope="session")
def sizes():
    return bench_sizes()


@pytest.fixture(scope="session")
def env():
    return exp.build_env(scale=bench_scale(), seed=7)


@pytest.fixture(scope="session")
def cache_suites(env, sizes):
    return exp.run_cache_suite(env, sizes, cache_fractions=SWEEP_FRACTIONS)


@pytest.fixture(scope="session")
def r2r_suites(env, sizes):
    return exp.run_r2r_suite(env, sizes)


def publish(result) -> None:
    """Print the paper-style artefact and persist it under results/."""
    print()
    print(result.rendered)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{result.experiment}.txt").write_text(
        result.rendered + "\n", encoding="utf-8"
    )
