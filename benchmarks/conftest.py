"""Shared benchmark fixtures.

Every benchmark reproduces one artefact of the paper's Section VI on the
``medium`` Beijing-like network with the scaled size series documented in
DESIGN.md.  Heavy computations (the cache suite, the R2R suite) are shared
across the benchmark files through session-scoped fixtures, and each file
additionally times its core operation through the ``benchmark`` fixture so
``pytest benchmarks/ --benchmark-only`` produces a timing table.

:func:`publish` writes each artefact twice: the legacy paper-style text
render at ``results/<experiment>.txt`` (secondary artefact, kept for
diffing against older checkouts) and the harness's schema'd JSON at
``results/<label>/<experiment>.json`` so a pytest benchmark run is
directly comparable with ``repro bench compare``.

Environment knobs (validated by :mod:`repro.bench.knobs` — a malformed
value fails with an error naming the knob):

* ``REPRO_BENCH_SCALE``  — network preset (default ``medium``)
* ``REPRO_BENCH_SIZES``  — comma-separated batch sizes (default
  ``100,300,900,1800``)
* ``REPRO_BENCH_LABEL``  — label the schema'd JSON records under
  (default ``pytest``)
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import experiments as exp
from repro.bench.figures import experiment_metrics
from repro.bench.knobs import consumed_knobs, env_int_list, env_str
from repro.bench.schema import SuiteResult, run_metadata, save_result

RESULTS_DIR = Path(__file__).parent / "results"

#: Fractions for the cache-size sweep.  The paper sweeps 70-100 % of |GC|;
#: at reproduction scale only deeper cuts bind (see EXPERIMENTS.md), so the
#: sweep reaches down to 10 %.
SWEEP_FRACTIONS = (0.1, 0.2, 0.4, 0.7, 1.0)


def bench_sizes():
    return env_int_list("REPRO_BENCH_SIZES", (100, 300, 900, 1800))


def bench_scale() -> str:
    from repro.bench.registry import SCALE_CHOICES

    return env_str("REPRO_BENCH_SCALE", "medium", choices=SCALE_CHOICES)


def bench_label() -> str:
    return env_str("REPRO_BENCH_LABEL", "pytest")


@pytest.fixture(scope="session")
def sizes():
    return bench_sizes()


@pytest.fixture(scope="session")
def env():
    return exp.build_env(scale=bench_scale(), seed=7)


@pytest.fixture(scope="session")
def cache_suites(env, sizes):
    return exp.run_cache_suite(env, sizes, cache_fractions=SWEEP_FRACTIONS)


@pytest.fixture(scope="session")
def r2r_suites(env, sizes):
    return exp.run_r2r_suite(env, sizes)


def publish(result) -> None:
    """Print the paper-style artefact and persist both render formats."""
    print()
    print(result.rendered)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{result.experiment}.txt").write_text(
        result.rendered + "\n", encoding="utf-8"
    )
    label = bench_label()
    save_result(
        SuiteResult(
            suite=result.experiment,
            label=label,
            meta=run_metadata(label, seed=7, knobs=consumed_knobs()),
            metrics=experiment_metrics(result),
            rendered=result.rendered,
        ),
        RESULTS_DIR,
    )
