"""Figure 7-(c): SLC-S hit ratio as the per-cluster cache budget shrinks.

Paper shape: the hit ratio decreases as the cache size drops from 100 % of
the budget.  At reproduction scale the sweep is taken against the *binding*
budget (the largest local cache an unconstrained run builds) and reaches
down to 10 % so the constraint actually bites — see EXPERIMENTS.md.
"""

from conftest import publish

from repro.analysis import experiments as exp
from repro.analysis.tables import check_monotone
from repro.core.cache import PathCache
from repro.search.astar import a_star


def test_fig7c_hit_ratio_vs_cache_size(benchmark, env, sizes, cache_suites):
    result = exp.run_fig7c(env, cache_suites)
    publish(result)

    # Per batch size, the hit ratio is non-decreasing in the cache budget.
    largest = cache_suites[-1]
    fractions = sorted(largest.sweep_hit_ratio)
    ratios = [largest.sweep_hit_ratio[f] for f in fractions]
    assert check_monotone(ratios, increasing=True, slack=0.02)

    # The deepest cut visibly hurts at the largest size.
    assert ratios[0] < ratios[-1]

    # Benchmark raw cache insert+lookup throughput under a tight budget.
    queries = env.workload.batch(200, *env.cache_band)
    paths = [
        a_star(env.graph, q.source, q.target).path for q in list(queries)[:50]
    ]

    def churn():
        cache = PathCache(env.graph, capacity_bytes=16 * 1024)
        for path in paths:
            cache.insert(path)
        hits = 0
        for q in queries:
            if cache.lookup(q.source, q.target) is not None:
                hits += 1
        return hits

    benchmark.pedantic(churn, rounds=3, iterations=1)
