"""Figure 7-(d): batch answering time of A*, GC, ZLC, SLC-R, SLC-S.

Paper shape: the cache-based methods answer the batch faster than plain
per-query A* once the batch is large enough for hits to amortise the cache
overhead, with SLC-S the strongest local variant.
"""

from conftest import publish

from repro.analysis import experiments as exp
from repro.baselines.one_by_one import OneByOneAnswerer


def test_fig7d_query_time(benchmark, env, sizes, cache_suites):
    result = exp.run_fig7d(env, cache_suites)
    publish(result)
    vnn = exp.run_fig7d_vnn(env, cache_suites)
    publish(vnn)

    # Deterministic shape (VNN): caches search strictly less than A*.
    vnn_last = {m: s[-1] for m, s in vnn.series.items()}
    assert vnn_last["slc-s"] < vnn_last["astar"]
    assert vnn_last["zlc"] < vnn_last["astar"]
    assert vnn_last["gc"] < vnn_last["astar"]

    for method, series in result.series.items():
        assert all(t > 0.0 for t in series), method
        # Work grows with batch size.
        assert series[-1] > series[0], method

    last = {m: s[-1] for m, s in result.series.items()}
    # At the largest size the caches beat (or at worst match) per-query A*.
    assert last["slc-s"] <= last["astar"] * 1.05
    assert last["gc"] <= last["astar"] * 1.05
    assert last["zlc"] <= last["astar"] * 1.15

    # Benchmark the A* baseline on the largest stream (reference cost).
    queries = env.workload.batch(sizes[-1], *env.cache_band)
    answerer = OneByOneAnswerer(env.graph)
    benchmark.pedantic(lambda: answerer.answer(queries), rounds=3, iterations=1)
