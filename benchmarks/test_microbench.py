"""Microbenchmarks for the core primitives.

Not paper artefacts — these track the per-operation costs that determine
how the headline numbers scale, so a regression in a primitive shows up
here before it distorts a figure.
"""

import pytest

from repro.core.cache import PathCache
from repro.core.coclustering import CoClusteringDecomposer
from repro.network.grid import GridIndex
from repro.network.spatial import search_space_ellipse
from repro.search.astar import a_star
from repro.search.bidirectional import bidirectional_dijkstra
from repro.search.dijkstra import dijkstra
from repro.search.generalized_astar import generalized_a_star


@pytest.fixture(scope="module")
def long_pair(env):
    q = env.fresh_workload(801).batch(1, *env.r2r_band)[0]
    return q.source, q.target


def test_micro_dijkstra(benchmark, env, long_pair):
    s, t = long_pair
    result = benchmark(lambda: dijkstra(env.graph, s, t))
    assert result.found


def test_micro_dijkstra_frozen(benchmark, env, long_pair):
    graph = env.graph.copy()
    graph.freeze()
    s, t = long_pair
    result = benchmark(lambda: dijkstra(graph, s, t))
    assert result.found
    assert result.distance == dijkstra(env.graph, s, t).distance


def test_micro_freeze(benchmark, env):
    graph = env.graph.copy()
    u, v, w = next(iter(graph.edges()))

    def rebuild():
        graph.set_weight(u, v, w)  # version bump drops the cached snapshot
        return graph.freeze()

    csr = benchmark(rebuild)
    assert csr.num_vertices == graph.num_vertices


def test_micro_astar(benchmark, env, long_pair):
    s, t = long_pair
    result = benchmark(lambda: a_star(env.graph, s, t))
    assert result.found


def test_micro_bidirectional(benchmark, env, long_pair):
    s, t = long_pair
    result = benchmark(lambda: bidirectional_dijkstra(env.graph, s, t))
    assert result.found


def test_micro_generalized_astar_8_targets(benchmark, env):
    workload = env.fresh_workload(802)
    batch = workload.batch(60)
    targets = [q.target for q in list(batch)[:8]]
    results, _ = benchmark(lambda: generalized_a_star(env.graph, 0, targets))
    assert len(results) == len(set(targets))


def test_micro_cache_lookup(benchmark, env):
    cache = PathCache(env.graph)
    workload = env.fresh_workload(803)
    batch = workload.batch(60, *env.cache_band)
    for q in list(batch)[:30]:
        r = a_star(env.graph, q.source, q.target)
        if r.found:
            cache.insert(r.path)
    probes = [(q.source, q.target) for q in batch]

    def lookups():
        found = 0
        for s, t in probes:
            if cache.lookup(s, t) is not None:
                found += 1
        return found

    benchmark(lookups)


def test_micro_grid_build(benchmark, env):
    index = benchmark(lambda: GridIndex(env.graph, levels=5))
    assert index.nonempty_cells > 0


def test_micro_ellipse_coverage(benchmark, env):
    grid = GridIndex(env.graph, levels=5)
    min_x, min_y, max_x, max_y = env.graph.extent()
    ellipse = search_space_ellipse(min_x, min_y, max_x, max_y, 30.0)
    covered = benchmark(lambda: grid.covered_cells(ellipse))
    assert covered


def test_micro_cocluster_per_query(benchmark, env):
    workload = env.fresh_workload(804)
    queries = workload.batch(500)
    decomposer = CoClusteringDecomposer(env.graph, eta=0.05)
    result = benchmark.pedantic(
        lambda: decomposer.decompose(queries), rounds=3, iterations=1
    )
    assert result.num_queries == 500
