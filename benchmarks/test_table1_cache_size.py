"""Table I: cache size (MB) of the 20 %-log Global Cache per batch size.

Paper shape: |GC| grows roughly linearly with the query count
(3 MB at 10k up to 224 MB at 1M); the scaled reproduction must grow
monotonically and roughly proportionally with |Q|.
"""

from conftest import publish

from repro.analysis import experiments as exp
from repro.analysis.tables import check_monotone
from repro.baselines.global_cache import GlobalCacheAnswerer, split_log_and_stream


def test_table1_cache_size(benchmark, env, sizes, cache_suites):
    result = exp.run_table1(env, cache_suites)
    publish(result)

    mbs = result.series["cache_mb"]
    assert all(mb > 0 for mb in mbs)
    assert check_monotone(mbs, increasing=True)

    # Rough linearity: growing |Q| by a factor grows |GC| by a comparable
    # factor (within 3x slack either way — sub-path dedup bends the curve).
    ratio_q = sizes[-1] / sizes[0]
    ratio_mb = mbs[-1] / mbs[0]
    assert ratio_q / 3.0 <= ratio_mb <= ratio_q * 3.0

    # Benchmark the GC build itself at a mid size.
    queries = env.workload.batch(sizes[len(sizes) // 2], *env.cache_band)
    log, _ = split_log_and_stream(queries, 0.2)

    def build():
        gc = GlobalCacheAnswerer(env.graph)
        gc.build(log)
        return gc.cache_bytes

    benchmark.pedantic(build, rounds=3, iterations=1)
