"""Cross-scale scaling study (beyond the paper's figures).

The paper evaluates one network; this artefact varies the *network* size
at a fixed batch size.  Two effects pull in opposite directions: per-query
A* cost grows with the network (bigger search spaces), but at a fixed |Q|
the endpoint reuse density falls, so the hit ratio — and with it the
relative VNN saving — shrinks.  That density effect is exactly why the
paper pairs its 312k-vertex network with batches up to 1M queries: the
batch advantage is a function of queries *per unit of network*, which the
measured table makes visible.

The measurement body lives in :mod:`repro.bench.scaling` — the same code
the ``scaling`` harness suite records as schema'd JSON.
"""

from conftest import RESULTS_DIR

from repro.analysis import experiments as exp
from repro.bench.scaling import run_scaling
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer

SCALES = ("tiny", "small", "medium")
BATCH = 400


def test_scaling_across_network_sizes(benchmark):
    outcome = run_scaling(scales=SCALES, batch=BATCH, seed=7)
    print()
    print(outcome.rendered)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "scaling.txt").write_text(outcome.rendered + "\n", encoding="utf-8")

    # The cache always reduces search work, at every network size.
    assert all(r < 1.0 for r in outcome.rel_vnn.values())

    # Benchmark the medium-scale SLC-S pass.
    env = exp.build_env(scale="medium", seed=7)
    queries = env.fresh_workload(502).batch(BATCH, *env.cache_band)
    decomposition = SearchSpaceDecomposer(env.graph).decompose(queries)
    answerer = LocalCacheAnswerer(env.graph, 10**6)
    benchmark.pedantic(lambda: answerer.answer(decomposition), rounds=3, iterations=1)
