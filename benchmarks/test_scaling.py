"""Cross-scale scaling study (beyond the paper's figures).

The paper evaluates one network; this artefact varies the *network* size
at a fixed batch size.  Two effects pull in opposite directions: per-query
A* cost grows with the network (bigger search spaces), but at a fixed |Q|
the endpoint reuse density falls, so the hit ratio — and with it the
relative VNN saving — shrinks.  That density effect is exactly why the
paper pairs its 312k-vertex network with batches up to 1M queries: the
batch advantage is a function of queries *per unit of network*, which the
measured table makes visible.
"""

from conftest import RESULTS_DIR

from repro.analysis import experiments as exp
from repro.analysis.tables import render_table
from repro.baselines.global_cache import GlobalCacheAnswerer, split_log_and_stream
from repro.baselines.one_by_one import OneByOneAnswerer
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer

SCALES = ("tiny", "small", "medium")
BATCH = 400


def test_scaling_across_network_sizes(benchmark):
    rows = []
    rel_vnn = {}
    for scale in SCALES:
        env = exp.build_env(scale=scale, seed=7)
        queries = env.fresh_workload(501).batch(BATCH, *env.cache_band)
        log, stream = split_log_and_stream(queries, 0.2)

        astar = OneByOneAnswerer(env.graph).answer(stream)

        gc = GlobalCacheAnswerer(env.graph)
        gc.build(log)
        decomposition = SearchSpaceDecomposer(env.graph).decompose(stream)
        slc = LocalCacheAnswerer(env.graph, max(gc.cache_bytes, 1)).answer(
            decomposition
        )

        rel = slc.visited / astar.visited if astar.visited else 1.0
        rel_vnn[scale] = rel
        rows.append(
            [
                scale,
                env.graph.num_vertices,
                astar.visited,
                slc.visited,
                f"{rel:.3f}",
                f"{slc.hit_ratio:.3f}",
            ]
        )

    rendered = render_table(
        ["scale", "|V|", "A* VNN", "SLC-S VNN", "SLC/A*", "hit ratio"],
        rows,
        title=f"Scaling study: |Q|={BATCH} across network sizes",
    )
    print()
    print(rendered)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "scaling.txt").write_text(rendered + "\n", encoding="utf-8")

    # The cache always reduces search work, at every network size.
    assert all(r < 1.0 for r in rel_vnn.values())

    # Benchmark the medium-scale SLC-S pass.
    env = exp.build_env(scale="medium", seed=7)
    queries = env.fresh_workload(502).batch(BATCH, *env.cache_band)
    decomposition = SearchSpaceDecomposer(env.graph).decompose(queries)
    answerer = LocalCacheAnswerer(env.graph, 10**6)
    benchmark.pedantic(lambda: answerer.answer(decomposition), rounds=3, iterations=1)
