"""Null-registry overhead proof for the instrumented Dijkstra.

The observability layer promises that disabled instrumentation is free in
practice: the instrumented search keeps one extra local integer per heap
push and makes a single ``record_search`` call (one attribute check) at
exit.  This script measures that claim directly — the instrumented
:func:`repro.search.dijkstra.dijkstra` under the default null registry
against a verbatim copy of the pre-instrumentation implementation — on a
200x200 grid city, and fails (exit 1) if the median overhead exceeds the
budget (3 % by default).

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

Environment knobs: ``REPRO_OBS_BUDGET_PCT`` (default ``3``),
``REPRO_OBS_ROUNDS`` (default ``9``), ``REPRO_OBS_PAIRS`` (default ``40``).
"""

from __future__ import annotations

import math
import os
import random
import sys
import time
from heapq import heappop, heappush
from typing import Dict, List, Set, Tuple

from repro.network.generators import grid_city
from repro.search.common import PathResult, reconstruct_path
from repro.search.dijkstra import dijkstra as instrumented_dijkstra

Infinity = math.inf


def baseline_dijkstra(graph, source: int, target: int) -> PathResult:
    """The seed's un-instrumented point-to-point Dijkstra, verbatim."""
    adj = graph._adj  # noqa: SLF001 - hot path
    dist: Dict[int, float] = {source: 0.0}
    parents: Dict[int, int] = {}
    done: Set[int] = set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = 0
    while heap:
        d, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        visited += 1
        if u == target:
            return PathResult(
                source, target, d, reconstruct_path(parents, source, target), visited
            )
        for v, w in adj[u]:
            v = int(v)
            nd = d + w
            if nd < dist.get(v, Infinity):
                dist[v] = nd
                parents[v] = u
                heappush(heap, (nd, v))
    return PathResult(source, target, Infinity, [], visited)


def time_round(fn, graph, pairs) -> float:
    t0 = time.perf_counter()
    for s, t in pairs:
        fn_result = fn(graph, s, t)
    elapsed = time.perf_counter() - t0
    assert fn_result.found
    return elapsed


def main() -> int:
    budget_pct = float(os.environ.get("REPRO_OBS_BUDGET_PCT", "3"))
    rounds = int(os.environ.get("REPRO_OBS_ROUNDS", "15"))
    num_pairs = int(os.environ.get("REPRO_OBS_PAIRS", "15"))

    print("building 200x200 grid city...", flush=True)
    graph = grid_city(200, 200, spacing=0.5, seed=7)
    rng = random.Random(11)
    n = graph.num_vertices
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(num_pairs)]

    for s, t in pairs[:3]:  # sanity: identical answers
        a, b = baseline_dijkstra(graph, s, t), instrumented_dijkstra(graph, s, t)
        assert a.distance == b.distance and a.path == b.path

    # Paired rounds, alternating order within a round, so machine drift
    # (thermal, allocator, scheduler) hits both sides equally; the median
    # ratio is the robust overhead estimate.
    ratios: List[float] = []
    for i in range(rounds):
        if i % 2 == 0:
            t_base = time_round(baseline_dijkstra, graph, pairs)
            t_inst = time_round(instrumented_dijkstra, graph, pairs)
        else:
            t_inst = time_round(instrumented_dijkstra, graph, pairs)
            t_base = time_round(baseline_dijkstra, graph, pairs)
        ratios.append(t_inst / t_base)
        print(
            f"round {i + 1}/{rounds}: baseline {t_base:.3f}s, "
            f"instrumented {t_inst:.3f}s, ratio {ratios[-1]:.4f}",
            flush=True,
        )

    ratios.sort()
    median = ratios[len(ratios) // 2]
    overhead_pct = (median - 1.0) * 100.0
    print(
        f"\nmedian of {rounds} paired ratios over {num_pairs} queries: "
        f"{median:.4f} (spread {ratios[0]:.4f}..{ratios[-1]:.4f})"
    )
    print(f"null-registry overhead: {overhead_pct:+.2f}% (budget {budget_pct:.1f}%)")
    if overhead_pct > budget_pct:
        print("FAIL: instrumentation overhead exceeds the budget")
        return 1
    print("OK: instrumented Dijkstra within budget of the un-instrumented seed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
