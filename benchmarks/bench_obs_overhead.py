"""Null-registry overhead proof for the instrumented Dijkstra.

The observability layer promises that disabled instrumentation is free in
practice: the instrumented search keeps one extra local integer per heap
push and makes a single ``record_search`` call (one attribute check) at
exit.  This script measures that claim directly — the instrumented
:func:`repro.search.dijkstra.dijkstra` under the default null registry
against a verbatim copy of the pre-instrumentation implementation — on a
200x200 grid city, and fails (exit 1) if the median overhead exceeds the
budget (3 % by default).

The measurement body lives in :mod:`repro.bench.obs_overhead` (shared
with the ``obs_overhead`` harness suite); this script is the gating
entry point.

Run it from the repo root::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

Environment knobs: ``REPRO_OBS_BUDGET_PCT`` (default ``3``),
``REPRO_OBS_ROUNDS`` (default ``15``), ``REPRO_OBS_PAIRS`` (default
``15``), ``REPRO_OBS_GRID`` (default ``200``).
"""

from __future__ import annotations

import sys

from repro.bench.knobs import BenchConfigError, env_float, env_int
from repro.bench.obs_overhead import run_obs_overhead


def main() -> int:
    try:
        budget_pct = env_float("REPRO_OBS_BUDGET_PCT", 3.0)
        rounds = env_int("REPRO_OBS_ROUNDS", 15)
        pairs = env_int("REPRO_OBS_PAIRS", 15)
        grid_side = env_int("REPRO_OBS_GRID", 200)
    except BenchConfigError as err:
        print(f"BENCH CONFIG ERROR: {err}")
        return 2
    print(f"building {grid_side}x{grid_side} grid city...", flush=True)
    outcome = run_obs_overhead(
        budget_pct=budget_pct,
        rounds=rounds,
        pairs=pairs,
        grid_side=grid_side,
        progress=True,
    )
    print(
        f"\nmedian of {rounds} paired ratios over {pairs} queries: "
        f"{outcome.median_ratio:.4f}"
    )
    print(
        f"null-registry overhead: {outcome.overhead_pct:+.2f}% "
        f"(budget {budget_pct:.1f}%)"
    )
    if not outcome.within_budget:
        print("FAIL: instrumentation overhead exceeds the budget")
        return 1
    print("OK: instrumented Dijkstra within budget of the un-instrumented seed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
