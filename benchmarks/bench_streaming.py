"""Streaming service throughput/latency benchmark at several worker counts.

Runs the same real-clock Poisson stream through
:class:`~repro.streaming.StreamingQueryService` for each worker count in
``REPRO_STREAM_WORKERS`` (default ``0,2,4``: serial in-process engine,
then 2 and 4 worker processes) and reports, per configuration:

* sustained answered-queries-per-second over the stream span,
* p50 / p99 end-to-end latency (arrival -> answer),
* window count by trigger, cross-window cache hit counts, shed totals.

Results append to ``benchmarks/results/streaming.jsonl`` (one JSON object
per configuration, machine-readable) and print as a table.  The benchmark
asserts only accounting (no query unaccounted, zero drops under the
default degrade policy) — absolute numbers are machine-dependent and
recorded, not gated.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_streaming.py

Environment knobs: ``REPRO_STREAM_SCALE`` (default ``small``),
``REPRO_STREAM_RATE`` (default ``400``), ``REPRO_STREAM_DURATION``
(default ``5``), ``REPRO_STREAM_WORKERS`` (default ``0,2,4``),
``REPRO_STREAM_WINDOW_MS`` (default ``250``), ``REPRO_STREAM_MAX_BATCH``
(default ``64``).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.network.generators import beijing_like
from repro.queries.arrivals import PoissonArrivals
from repro.queries.workload import WorkloadGenerator
from repro.streaming import StreamingQueryService

SCALE = os.environ.get("REPRO_STREAM_SCALE", "small")
RATE = float(os.environ.get("REPRO_STREAM_RATE", "400"))
DURATION = float(os.environ.get("REPRO_STREAM_DURATION", "5"))
WORKERS = [
    int(w)
    for w in os.environ.get("REPRO_STREAM_WORKERS", "0,2,4").split(",")
    if w.strip()
]
WINDOW_MS = float(os.environ.get("REPRO_STREAM_WINDOW_MS", "250"))
MAX_BATCH = int(os.environ.get("REPRO_STREAM_MAX_BATCH", "64"))

RESULTS = Path(__file__).parent / "results" / "streaming.jsonl"


def bench_one(graph, arrivals, workers: int) -> dict:
    with StreamingQueryService(
        graph,
        window_seconds=WINDOW_MS / 1000.0,
        max_batch=MAX_BATCH,
        workers=workers,
        clock="real",
    ) as service:
        report = service.run(arrivals)
    assert report.unaccounted_queries == 0, (
        f"workers={workers}: {report.unaccounted_queries} queries unaccounted"
    )
    assert report.dropped_queries == 0, (
        f"workers={workers}: {report.dropped_queries} queries dropped"
    )
    return {
        "workers": workers,
        "scale": SCALE,
        "rate": RATE,
        "duration": DURATION,
        "window_ms": WINDOW_MS,
        "max_batch": MAX_BATCH,
        "arrivals": report.total_arrivals,
        "answered": report.answered_queries,
        "qps": round(report.qps, 2),
        "p50_latency_ms": round(report.p50_latency * 1000, 2),
        "p99_latency_ms": round(report.p99_latency * 1000, 2),
        "windows": len(report.windows),
        "windows_by_trigger": report.windows_by_trigger,
        "cache_hits": report.stream_cache_hits,
        "shed_degraded": report.shed_degraded,
        "wall_seconds": round(report.wall_seconds, 3),
    }


def main() -> int:
    print(f"network   : beijing_like({SCALE!r})")
    graph = beijing_like(SCALE, seed=0)
    print(f"size      : {graph.num_vertices} vertices, {graph.num_edges} edges")
    workload = WorkloadGenerator(graph, seed=7)
    arrivals = PoissonArrivals(workload, rate=RATE, seed=7).duration(DURATION)
    print(f"stream    : {len(arrivals)} queries, {RATE:g} qps nominal, "
          f"{DURATION:g}s, window {WINDOW_MS:g}ms / max {MAX_BATCH}")
    print()
    header = (f"{'workers':>7} | {'qps':>8} | {'p50(ms)':>8} | "
              f"{'p99(ms)':>8} | {'windows':>7} | {'hits':>6} | {'shed':>5}")
    print(header)
    print("-" * len(header))
    rows = []
    for workers in WORKERS:
        row = bench_one(graph, arrivals, workers)
        rows.append(row)
        print(f"{row['workers']:>7} | {row['qps']:>8.1f} | "
              f"{row['p50_latency_ms']:>8.1f} | {row['p99_latency_ms']:>8.1f} | "
              f"{row['windows']:>7} | {row['cache_hits']:>6} | "
              f"{row['shed_degraded']:>5}")
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y-%m-%dT%H:%M:%S")
    with RESULTS.open("a", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps({"at": stamp, **row}, sort_keys=True) + "\n")
    print(f"\nresults appended to {RESULTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
