"""Streaming service throughput/latency benchmark at several worker counts.

Runs the same real-clock Poisson stream through
:class:`~repro.streaming.StreamingQueryService` for each worker count in
``REPRO_STREAM_WORKERS`` (default ``0,2,4``: serial in-process engine,
then 2 and 4 worker processes) and reports, per configuration:

* sustained answered-queries-per-second over the stream span,
* p50 / p99 end-to-end latency (arrival -> answer),
* window count by trigger, cross-window cache hit counts, shed totals.

Results append to ``benchmarks/results/streaming.jsonl`` — one JSON
object per configuration, each stamped with full run provenance (UTC
ISO-8601 timestamp, git sha, label) so rows from different machines and
checkouts stay distinguishable.  The schema'd per-label artefact is
written by ``repro bench run --suite streaming --label <label>``, which
shares this script's measurement body (:mod:`repro.bench.streaming_bench`).
The benchmark asserts only accounting (no query unaccounted, zero drops
under the default degrade policy) — absolute numbers are
machine-dependent and recorded, not gated.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_streaming.py

Environment knobs: ``REPRO_STREAM_SCALE`` (default ``small``),
``REPRO_STREAM_RATE`` (default ``400``), ``REPRO_STREAM_DURATION``
(default ``5``), ``REPRO_STREAM_WORKERS`` (default ``0,2,4``),
``REPRO_STREAM_WINDOW_MS`` (default ``250``), ``REPRO_STREAM_MAX_BATCH``
(default ``64``), ``REPRO_BENCH_LABEL`` (default ``adhoc``; tags the
JSONL rows).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.bench.knobs import BenchConfigError, env_str
from repro.bench.schema import git_sha, utc_now_iso
from repro.bench.streaming_bench import (
    numpy_row_knobs,
    run_numpy_row,
    run_streaming,
    streaming_knobs,
)

RESULTS = Path(__file__).parent / "results" / "streaming.jsonl"


def main() -> int:
    try:
        knobs = streaming_knobs()
        label = env_str("REPRO_BENCH_LABEL", "adhoc")
    except BenchConfigError as err:
        print(f"BENCH CONFIG ERROR: {err}")
        return 2
    outcome = run_streaming(progress=True, **knobs)
    np_outcome = run_numpy_row(progress=True, **numpy_row_knobs())
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    provenance = {
        "at_utc": utc_now_iso(),
        "git_sha": git_sha(Path(__file__).parent),
        "label": label,
    }
    with RESULTS.open("a", encoding="utf-8") as fh:
        for row in outcome.rows + np_outcome.rows:
            fh.write(json.dumps({**provenance, **row}, sort_keys=True) + "\n")
    print(f"\nresults appended to {RESULTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
