"""Figure 8: 40-server makespan per method plus CH/PLL construction time.

Paper shape (log scale): index construction takes orders of magnitude
longer than answering an entire batch with the index-free methods, so
index-based approaches cannot track a dynamic network; among the batch
methods the cache/R2R pipelines parallelise at least as well as per-query
A* on their respective bands.
"""

from conftest import publish

from repro.analysis import experiments as exp
from repro.analysis.parallel import lpt_makespan


def test_fig8_multithread(benchmark, env):
    result = exp.run_fig8(
        env, size=400, num_servers=40, include_indexes=True, measure_workers=2
    )
    publish(result)

    seconds = dict(zip(result.xs, result.series["seconds"]))

    # The measured multiprocess run sits next to the LPT prediction for the
    # same worker count. On a single-core box the measured speedup can be
    # below 1, so assert the report's shape, not its magnitude.
    workers = result.extra["measured_workers"]
    assert seconds[f"slc-s-mp{workers}"] > 0.0
    assert seconds[f"slc-s-lpt{workers}"] > 0.0
    assert result.extra["measured_speedup"] > 0.0
    assert result.extra["predicted_speedup"] > 0.0
    assert 0.0 < result.extra["measured_utilisation"] <= 1.0 + 1e-9
    assert result.extra["mean_queue_wait_seconds"] >= 0.0
    assert result.extra["fallback_units"] >= 0

    # The paper's core claim: index construction dwarfs batch answering.
    batch_methods = ("astar", "slc-s", "astar-long", "r2r-s")
    slowest_batch = max(seconds[m] for m in batch_methods)
    assert seconds["ch-construction"] > slowest_batch * 10
    assert seconds["pll-construction"] > slowest_batch * 10
    assert seconds["arcflags-construction"] > slowest_batch * 10

    # Within each band, the batch method parallelises comparably to A*.
    # Makespans here are sub-millisecond, so the slack absorbs scheduler
    # noise; the load-bearing claim is the index gap above.
    assert seconds["slc-s"] <= seconds["astar"] * 4.0
    assert seconds["r2r-s"] <= seconds["astar-long"] * 4.0

    # Benchmark the LPT scheduler itself on a large synthetic unit set.
    costs = [(i % 97) / 97.0 + 0.01 for i in range(5000)]
    benchmark.pedantic(lambda: lpt_makespan(costs, 40), rounds=5, iterations=1)
