"""Figure 7-(b): cache hit ratio of GC / ZLC / SLC-R / SLC-S vs batch size.

Paper shape: hit ratio increases with |Q| for every method; SLC-S is the
best local-cache variant (better than SLC-R thanks to longest-first
ordering) and beats the Global Cache.
"""

from conftest import publish

from repro.analysis import experiments as exp
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer


def test_fig7b_hit_ratio(benchmark, env, sizes, cache_suites):
    result = exp.run_fig7b(env, cache_suites)
    publish(result)

    for method, series in result.series.items():
        assert all(0.0 <= r <= 1.0 for r in series)
        # Hit ratio grows with batch size (allowing small-size noise).
        assert series[-1] > series[0], method

    last = {m: s[-1] for m, s in result.series.items()}
    # SLC-S beats the Global Cache at the largest size (the paper's
    # headline local-vs-global claim).
    assert last["slc-s"] >= last["gc"]
    # Longest-first ordering beats random ordering.
    assert last["slc-s"] >= last["slc-r"]

    # Benchmark the SLC-S answering pass at the largest size.
    suite = cache_suites[-1]
    queries = env.workload.batch(sizes[-1], *env.cache_band)
    decomposition = SearchSpaceDecomposer(env.graph).decompose(queries)
    answerer = LocalCacheAnswerer(env.graph, suite.gc_bytes, order="longest")
    benchmark.pedantic(
        lambda: answerer.answer(decomposition), rounds=3, iterations=1
    )
