#!/usr/bin/env python3
"""Quickstart: answer a batch of shortest-path queries five ways.

Builds a Beijing-like synthetic road network, draws a hotspot-biased batch
of queries (the kind a ride-hailing backend sees every second), and runs it
through the main pipelines of the paper:

* per-query A* (the do-nothing baseline),
* Global Cache (Thomsen et al.),
* SLC-S — Search-Space Estimation decomposition + Local Cache,
* R2R-S — Co-Clustering decomposition + error-bounded Region-to-Region.

Run:  python examples/quickstart.py
"""

from repro import BatchProcessor, WorkloadGenerator, beijing_like
from repro.analysis.metrics import error_report


def main() -> None:
    print("Building a Beijing-like road network...")
    graph = beijing_like("medium", seed=7)
    print(f"  {graph.num_vertices} intersections, {graph.num_edges} road segments")

    # Taxi-like concentration: most endpoints cluster around a few hotspots.
    workload = WorkloadGenerator(graph, seed=42, hotspot_fraction=0.85, num_hotspots=6)
    batch = workload.batch(800)
    print(f"  drew a batch of {len(batch)} queries "
          f"({len(batch.sources)} distinct origins, {len(batch.targets)} destinations)\n")

    processor = BatchProcessor(graph, eta=0.05, seed=0)

    header = f"{'method':>8} | {'total (s)':>9} | {'VNN':>8} | {'hit ratio':>9} | {'max err %':>9}"
    print(header)
    print("-" * len(header))
    for method in ("astar", "gc", "slc-s", "r2r-s"):
        answer = processor.process(batch, method)
        errors = error_report(graph, answer)
        print(
            f"{method:>8} | {answer.total_seconds:>9.4f} | {answer.visited:>8} | "
            f"{answer.hit_ratio:>9.3f} | {errors.max_error_pct:>9.3f}"
        )

    print(
        "\nTakeaways: the cache pipelines answer a large fraction of queries"
        "\nwithout any search (hit ratio), and R2R trades a bounded error"
        "\n(<= 5 % by construction) for far fewer visited vertices."
    )


if __name__ == "__main__":
    main()
