#!/usr/bin/env python3
"""Dynamic traffic: batch answering across weight-change epochs.

The paper's whole premise is that index-based methods cannot keep up with
a dynamic road network: by the time a CH or a 2-hop labelling finishes
building, the traffic has changed.  Index-free batch processing adapts
instantly — and the Local Cache can even be *reused* across batches within
one traffic epoch (Section V-A3).

This example runs a stream of query batches through a
:class:`DynamicBatchSession` while the traffic changes every few batches
(epoch = one weight snapshot), and shows:

* caches being reused between similar batches inside an epoch,
* caches being flushed when the weights change,
* answers staying exact w.r.t. the *current* snapshot throughout, and
* for contrast, how long a CH build takes on the same network — longer
  than answering every batch in the whole scenario.

Run:  python examples/dynamic_traffic.py
"""

import random
import time

from repro import DynamicBatchSession, WorkloadGenerator, beijing_like
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.index.ch import ContractionHierarchy
from repro.search.dijkstra import dijkstra


def jam_some_roads(graph, rng: random.Random, fraction: float = 0.1) -> int:
    """A new traffic snapshot: slow down a random subset of segments."""
    edges = list(graph.edges())
    jammed = rng.sample(edges, max(1, int(len(edges) * fraction)))
    for u, v, w in jammed:
        graph.set_weight(u, v, w * rng.uniform(1.5, 3.0))
    return len(jammed)


def main() -> None:
    graph = beijing_like("small", seed=5)
    workload = WorkloadGenerator(graph, seed=23)
    rng = random.Random(99)

    session = DynamicBatchSession(
        graph,
        decomposer=SearchSpaceDecomposer(graph),
        answerer=LocalCacheAnswerer(graph, cache_bytes=512 * 1024),
        similarity_threshold=0.3,
    )

    print(f"{'batch':>5} | {'epoch':>5} | {'time (s)':>8} | {'hit ratio':>9} | "
          f"{'caches':>6} | {'reused':>6}")
    print("-" * 55)
    epoch = 1
    total_answer_time = 0.0
    for i in range(1, 9):
        if i in (4, 7):  # traffic changes before these batches
            jam_some_roads(graph, rng)
            epoch += 1
        batch = workload.batch(250)
        answer = session.process_batch(batch)
        total_answer_time += answer.total_seconds

        # Spot-check exactness against the *current* snapshot.
        q, r = answer.answers[0]
        truth = dijkstra(graph, q.source, q.target).distance
        assert abs(r.distance - truth) < 1e-9, "stale cache leaked a wrong answer!"

        print(
            f"{i:>5} | {epoch:>5} | {answer.total_seconds:>8.4f} | "
            f"{answer.hit_ratio:>9.3f} | {session.live_cache_count:>6} | "
            f"{session.caches_reused:>6}"
        )

    print("-" * 55)
    print(f"answered 8 batches across {epoch} traffic epochs "
          f"in {total_answer_time:.3f}s; epochs flushed: {session.epochs_flushed}")

    print("\nFor contrast, building a Contraction Hierarchy on this snapshot:")
    t0 = time.perf_counter()
    ch = ContractionHierarchy(graph)
    build = time.perf_counter() - t0
    print(f"  CH construction: {build:.3f}s ({ch.num_shortcuts} shortcuts) — "
          f"{build / max(total_answer_time, 1e-9):.1f}x the whole batch stream,")
    print("  and it is already stale the moment the next snapshot arrives.")


if __name__ == "__main__":
    main()
