#!/usr/bin/env python3
"""Ride-hailing morning peak: batch dispatch pricing.

The scenario that motivates the paper's introduction: a ride-hailing
platform receives ~100k shortest-path requests per minute at peak.  Every
second it gathers the pending requests into one batch and needs all the
distances (for pricing and ETA) as fast as possible.

This example simulates a morning peak: commuters stream from residential
hotspots to two business districts.  It compares per-query A* against the
SLC-S pipeline (Search-Space Estimation decomposition + Local Cache) over a
sequence of one-second batches, reporting per-batch latency and the total
visited-node work — the metric that determines how many servers you need.

Run:  python examples/ride_hailing.py
"""

from repro import WorkloadGenerator, beijing_like
from repro.baselines.global_cache import GlobalCacheAnswerer, split_log_and_stream
from repro.baselines.one_by_one import OneByOneAnswerer
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.queries.workload import Hotspot


def morning_peak_workload(graph, seed: int = 11) -> WorkloadGenerator:
    """Commuters: many residential areas feeding two business districts."""
    min_x, min_y, max_x, max_y = graph.extent()
    span = max(max_x - min_x, max_y - min_y)
    hotspots = [
        # Two dense CBD destinations near the centre.
        Hotspot(0.0, 0.0, sigma=span * 0.01, weight=3.0),
        Hotspot(span * 0.10, span * 0.05, sigma=span * 0.01, weight=2.0),
        # Residential belts on the outskirts.
        Hotspot(-span * 0.3, -span * 0.25, sigma=span * 0.02, weight=1.5),
        Hotspot(span * 0.28, -span * 0.3, sigma=span * 0.02, weight=1.5),
        Hotspot(-span * 0.25, span * 0.3, sigma=span * 0.02, weight=1.5),
    ]
    return WorkloadGenerator(graph, hotspots=hotspots, hotspot_fraction=0.95, seed=seed)


def main() -> None:
    graph = beijing_like("medium", seed=3)
    workload = morning_peak_workload(graph)
    print(f"Network: {graph.num_vertices} intersections / {graph.num_edges} segments")

    batches = workload.batch_stream(num_batches=5, batch_size=800)
    astar = OneByOneAnswerer(graph)
    decomposer = SearchSpaceDecomposer(graph)

    # Budget each local cache like the paper: a 20 % log's GC size.  The
    # budget is sized once, on the first batch — it is a capacity knob, not
    # per-batch state.
    log, _ = split_log_and_stream(batches[0], 0.2)
    gc = GlobalCacheAnswerer(graph)
    gc.build(log)
    answerer = LocalCacheAnswerer(graph, max(gc.cache_bytes, 1), order="longest")

    total_astar = total_slc = 0.0
    vnn_astar = vnn_slc = 0
    print(f"\n{'batch':>5} | {'A* (s)':>8} | {'SLC-S (s)':>9} | {'speedup':>7} | {'hit ratio':>9}")
    print("-" * 50)
    for i, batch in enumerate(batches, start=1):
        base = astar.answer(batch)

        decomposition = decomposer.decompose(batch)
        slc = answerer.answer(decomposition)

        slc_total = slc.total_seconds
        total_astar += base.answer_seconds
        total_slc += slc_total
        vnn_astar += base.visited
        vnn_slc += slc.visited
        speedup = base.answer_seconds / slc_total if slc_total else float("inf")
        print(
            f"{i:>5} | {base.answer_seconds:>8.4f} | {slc_total:>9.4f} | "
            f"{speedup:>6.2f}x | {slc.hit_ratio:>9.3f}"
        )

    print("-" * 50)
    print(f"{'sum':>5} | {total_astar:>8.4f} | {total_slc:>9.4f}")
    print(
        f"\nVisited-node work: A* = {vnn_astar:,}   SLC-S = {vnn_slc:,} "
        f"({100 * (1 - vnn_slc / vnn_astar):.1f} % less search work)"
    )
    print("Less search work per batch = fewer servers for the same query load.")


if __name__ == "__main__":
    main()
