#!/usr/bin/env python3
"""Replaying a (simulated) taxi log through the batch service.

The paper's workload is a month of Beijing taxi trajectories: each trip's
start/end locations become one shortest-path query.  This example runs
that exact pipeline on simulated data:

1. simulate taxi trips on the network (hotspot ODs, occasional detours),
2. derive the query log from the trip endpoints (the paper's rule),
3. replay the log through the windowed :class:`BatchQueryService`,
4. additionally stress the caches with *sub-trip* queries (passengers
   picked up mid-route), where coherence — and hence hit ratio — peaks.

Run:  python examples/taxi_log_replay.py
"""

from repro import BatchQueryService, TrajectorySimulator, beijing_like
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.queries.arrivals import TimedQuery
from repro.queries.trajectories import queries_from_trips, subtrip_queries


def main() -> None:
    graph = beijing_like("small", seed=21)
    simulator = TrajectorySimulator(graph, waypoint_probability=0.3, seed=13)
    trips = simulator.simulate(500, rate_per_second=80.0)
    print(
        f"simulated {len(trips)} taxi trips "
        f"(mean route length {sum(len(t) for t in trips) / len(trips):.1f} vertices, "
        f"over {trips[-1].start_time:.1f}s)"
    )

    # The paper's derivation: endpoints -> queries, stamped by trip start.
    log = [
        TimedQuery(trip.start_time, q)
        for trip, q in zip(trips, queries_from_trips(trips))
    ]

    service = BatchQueryService(graph, window_seconds=1.0)
    report = service.run(log)
    print(
        f"\nendpoint-query replay: {report.total_queries} queries in "
        f"{report.busy_windows} windows, mean hit ratio "
        f"{report.mean_hit_ratio:.2f}, worst window "
        f"{report.worst_window_seconds * 1000:.1f} ms, "
        f"deadline misses {report.deadline_misses}"
    )

    # Coherence ceiling: mid-route pickups all lie on cached trip routes.
    sub = subtrip_queries(trips, per_trip=3, seed=2)
    sub_stream = [
        TimedQuery(i / 300.0, q) for i, q in enumerate(sub)
    ]
    stress = BatchQueryService(
        graph,
        window_seconds=1.0,
        decomposer=SearchSpaceDecomposer(graph),
        answerer=LocalCacheAnswerer(graph, cache_bytes=2 * 1024 * 1024),
    )
    stress_report = stress.run(sub_stream)
    print(
        f"sub-trip stress:       {stress_report.total_queries} queries, "
        f"mean hit ratio {stress_report.mean_hit_ratio:.2f} "
        f"(coherence ceiling — queries literally share routes)"
    )
    assert stress_report.mean_hit_ratio > report.mean_hit_ratio
    print("\nHigher route coherence -> higher hit ratio, exactly the premise")
    print("batch processing is built on.")


if __name__ == "__main__":
    main()
