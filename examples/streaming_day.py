#!/usr/bin/env python3
"""A simulated service day: Poisson arrivals, traffic epochs, live batching.

Puts the whole stack together the way a deployment would run it:

* queries arrive as a Poisson stream (Definition 1's "issued within a
  short time period" becomes literal one-second windows),
* a :class:`TrafficTimeline` replays congestion snapshots — morning rush,
  a midday incident, evening recovery,
* a :class:`DynamicBatchSession` answers every window with per-cluster
  local caches, reusing them inside an epoch and flushing on snapshots.

Run:  python examples/streaming_day.py
"""

from repro import (
    DynamicBatchSession,
    PoissonArrivals,
    TrafficTimeline,
    WorkloadGenerator,
    beijing_like,
    window_batches,
)
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.network.timeline import (
    congestion_snapshot,
    incident_snapshot,
    recovery_snapshot,
)
from repro.queries.arrivals import stream_statistics
from repro.search.dijkstra import dijkstra


def main() -> None:
    graph = beijing_like("small", seed=12).copy()
    workload = WorkloadGenerator(graph, seed=77, hotspot_fraction=0.85, num_hotspots=6)

    # One simulated "day" compressed to 12 windows of 1 second each.
    process = PoissonArrivals(workload, rate=150.0, seed=5)
    arrivals = process.duration(12.0)
    stats = stream_statistics(arrivals)
    print(
        f"stream: {stats['count']} queries over {stats['duration']:.1f}s "
        f"(rate {stats['rate']:.0f}/s, burstiness cv {stats['cv']:.2f})"
    )

    timeline = TrafficTimeline(graph, seed=3)
    timeline.schedule(3.0, congestion_snapshot(0.25, 1.5, 2.5), "morning rush")
    timeline.schedule(7.0, incident_snapshot(radius=8.0, factor=4.0), "incident")
    timeline.schedule(10.0, recovery_snapshot(), "traffic clears")

    session = DynamicBatchSession(
        graph,
        decomposer=SearchSpaceDecomposer(graph),
        answerer=LocalCacheAnswerer(graph, cache_bytes=512 * 1024, eviction="lru"),
        similarity_threshold=0.3,
    )

    print(f"\n{'t(s)':>4} | {'queries':>7} | {'time(s)':>8} | {'hit':>5} | {'event':<14}")
    print("-" * 52)
    for second, batch in enumerate(window_batches(arrivals, 1.0)):
        fired = timeline.advance_to(float(second))
        event = timeline.applied[-1][1] if fired else ""
        if len(batch) == 0:
            print(f"{second:>4} | {0:>7} | {'-':>8} | {'-':>5} | {event:<14}")
            continue
        answer = session.process_batch(batch)
        # Spot-check one answer against the live snapshot.
        q, r = answer.answers[0]
        truth = dijkstra(graph, q.source, q.target).distance
        assert abs(r.distance - truth) < 1e-9
        print(
            f"{second:>4} | {len(batch):>7} | {answer.total_seconds:>8.4f} | "
            f"{answer.hit_ratio:>5.2f} | {event:<14}"
        )

    print("-" * 52)
    print(
        f"caches created={session.caches_created}, reused={session.caches_reused}, "
        f"epochs flushed={session.epochs_flushed}"
    )
    print("Every answer above was verified exact against the snapshot in force.")


if __name__ == "__main__":
    main()
