#!/usr/bin/env python3
"""A simulated service day through the online streaming front door.

Puts the whole stack together the way a deployment would run it:

* queries arrive as a Poisson stream (Definition 1's "issued within a
  short time period" becomes literal micro-batch windows),
* a :class:`TrafficTimeline` replays congestion snapshots — morning rush,
  a midday incident, evening recovery — and every snapshot invalidates
  the cross-window path cache by bumping the graph version,
* :class:`StreamingQueryService` assembles micro-batch windows under the
  dual duration/size trigger, admission-controls the queue, serves
  repeat queries from the version-keyed cross-window cache, and hands
  the misses to the batch backend (a :class:`DynamicBatchSession` with
  per-cluster local caches at ``workers=1``).

The whole day runs on the simulated clock, so the run is a deterministic
replay: same stream, same scheduling decisions, same windows, every time.

Run:  python examples/streaming_day.py
"""

from repro import (
    PoissonArrivals,
    StreamingQueryService,
    TrafficTimeline,
    WorkloadGenerator,
    beijing_like,
)
from repro.network.timeline import (
    congestion_snapshot,
    incident_snapshot,
    recovery_snapshot,
)
from repro.queries.arrivals import stream_statistics
from repro.search.dijkstra import dijkstra


def main() -> None:
    graph = beijing_like("small", seed=12).copy()
    workload = WorkloadGenerator(graph, seed=77, hotspot_fraction=0.85, num_hotspots=6)

    # One simulated "day" compressed to 12 seconds of stream time.
    process = PoissonArrivals(workload, rate=150.0, seed=5)
    arrivals = process.duration(12.0)
    stats = stream_statistics(arrivals)
    print(
        f"stream: {stats['count']} queries over {stats['duration']:.1f}s "
        f"(rate {stats['rate']:.0f}/s, burstiness cv {stats['cv']:.2f})"
    )

    timeline = TrafficTimeline(graph, seed=3)
    timeline.schedule(3.0, congestion_snapshot(0.25, 1.5, 2.5), "morning rush")
    timeline.schedule(7.0, incident_snapshot(radius=8.0, factor=4.0), "incident")
    timeline.schedule(10.0, recovery_snapshot(), "traffic clears")

    with StreamingQueryService(
        graph,
        window_seconds=0.25,
        max_batch=48,
        workers=1,                       # dynamic session backend
        clock="simulated",
        timeline=timeline,
        stream_cache_bytes=512 * 1024,
    ) as service:
        report = service.run(arrivals)

    events = {round(at, 3): label for at, label, _ in timeline.applied}
    print(f"\n{'cut(s)':>7} | {'size':>4} | {'trig':<8} | {'hits':>4} | {'event':<14}")
    print("-" * 52)
    for w in report.windows:
        # A timeline event fires when a window cut advances past its stamp.
        label = ""
        if w.timeline_events:
            label = next(
                (lbl for at, lbl in sorted(events.items()) if at <= w.cut_at),
                "",
            )
            for at in [a for a in events if a <= w.cut_at]:
                label = events.pop(at)
        print(
            f"{w.cut_at:>7.2f} | {w.queries:>4} | {w.trigger:<8} | "
            f"{w.cache_hits:>4} | {label:<14}"
        )

    print("-" * 52)
    print(
        f"windows={len(report.windows)} {report.windows_by_trigger}, "
        f"answered={report.answered_queries}/{report.total_arrivals}, "
        f"dead-lettered={len(report.dead_letters)}"
    )
    print(
        f"stream cache: {report.stream_cache_hits} hits, "
        f"{report.stream_cache_misses} misses, "
        f"{report.stream_cache_invalidations} invalidations (one per snapshot)"
    )
    print(
        f"latency: p50 {report.p50_latency * 1000:.0f} ms, "
        f"p99 {report.p99_latency * 1000:.0f} ms; "
        f"throughput {report.qps:.0f} qps"
    )

    # Every answer is exact against the snapshot in force when its window
    # ran; after the last event the graph no longer changes, so the tail
    # of the day can be re-checked against the final state directly.
    checked = 0
    for q, r in report.answers[-25:]:
        truth = dijkstra(graph, q.source, q.target).distance
        assert abs(r.distance - truth) < 1e-9, (q, r.distance, truth)
        checked += 1
    print(f"Spot-checked {checked} end-of-day answers exact against the "
          "final snapshot.")


if __name__ == "__main__":
    main()
