#!/usr/bin/env python3
"""Capacity planning: how many servers does each method need?

The paper's opening problem: a platform takes 100,000+ shortest-path
queries per minute and wants to grow without buying servers linearly.
This example measures real per-unit costs of three methods on one second
of traffic, then uses the LPT capacity planner to answer the purchasing
question — including what happens when the load grows 10x.

Run:  python examples/capacity_planning.py
"""

import time

from repro import WorkloadGenerator, beijing_like
from repro.analysis.capacity import compare_methods, scale_costs, servers_needed
from repro.baselines.global_cache import GlobalCacheAnswerer, split_log_and_stream
from repro.baselines.one_by_one import OneByOneAnswerer
from repro.core.clusters import Decomposition
from repro.core.coclustering import CoClusteringDecomposer
from repro.core.local_cache import LocalCacheAnswerer
from repro.core.r2r import RegionToRegionAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.queries.query import QuerySet
from repro.queries.workload import band_for_network

DEADLINE = 1.0  # every one-second batch must finish within its second


def per_query_costs(graph, queries):
    answerer = OneByOneAnswerer(graph)
    costs = []
    for q in queries:
        t0 = time.perf_counter()
        answerer.answer(QuerySet([q]))
        costs.append(time.perf_counter() - t0)
    return costs


def per_cluster_costs(graph, decomposition, answer_one):
    costs = []
    for cluster in decomposition:
        mini = Decomposition([cluster], decomposition.method, 0.0)
        t0 = time.perf_counter()
        answer_one(mini)
        costs.append(time.perf_counter() - t0)
    return costs


def main() -> None:
    graph = beijing_like("medium", seed=7)
    workload = WorkloadGenerator(graph, seed=15, hotspot_fraction=0.85, num_hotspots=6)
    lo, hi = band_for_network(graph, "cache")
    batch = workload.batch(600, min_dist=lo, max_dist=hi)
    print(f"One second of traffic: {len(batch)} queries on "
          f"{graph.num_vertices} intersections.\n")

    # A*: a query is the work unit.
    astar_costs = per_query_costs(graph, batch)

    # SLC-S: a cluster (its cache is local state) is the work unit.
    log, _ = split_log_and_stream(batch, 0.2)
    gc = GlobalCacheAnswerer(graph)
    gc.build(log)
    sse = SearchSpaceDecomposer(graph).decompose(batch)
    lc = LocalCacheAnswerer(graph, max(gc.cache_bytes, 1), order="longest")
    slc_costs = per_cluster_costs(graph, sse, lc.answer)

    # R2R on the long band (its natural workload).
    r_lo, r_hi = band_for_network(graph, "r2r")
    long_batch = workload.batch(600, min_dist=r_lo, max_dist=r_hi)
    astar_long_costs = per_query_costs(graph, long_batch)
    cc = CoClusteringDecomposer(graph, eta=0.05).decompose(long_batch)
    r2r = RegionToRegionAnswerer(graph, eta=0.05, selection="longest")
    r2r_costs = per_cluster_costs(graph, cc, r2r.answer)

    for load_factor in (10.0, 100.0):
        print(f"=== load x{load_factor:.0f} "
              f"({int(len(batch) * load_factor)} queries/second) ===")
        plans = [
            servers_needed(scale_costs(astar_costs, load_factor), DEADLINE, method="astar (short)"),
            servers_needed(scale_costs(slc_costs, load_factor), DEADLINE, method="slc-s (short)"),
            servers_needed(scale_costs(astar_long_costs, load_factor), DEADLINE, method="astar (long)"),
            servers_needed(scale_costs(r2r_costs, load_factor), DEADLINE, method="r2r-s (long)"),
        ]
        for plan in compare_methods(plans):
            print(
                f"  {plan.method:<15} servers={plan.servers:>3}  "
                f"makespan={plan.makespan_seconds:.3f}s  "
                f"headroom={plan.headroom:.0%}"
            )
        print()

    print("Batching answers the same second of traffic with fewer servers,")
    print("and the gap widens as the load grows — the paper's core pitch.")


if __name__ == "__main__":
    main()
