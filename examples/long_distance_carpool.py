#!/usr/bin/env python3
"""Long-distance carpool matching with error-bounded R2R.

Airport runs, inter-district commutes, suburb-to-suburb carpools: long
queries whose origins and destinations cluster into region pairs — the
dumbbell shape the paper's Co-Clustering decomposition is built for.

A carpool matcher does not need exact distances: a guaranteed 5 % error is
plenty for grouping riders.  This example:

1. draws a long-distance batch (the paper's 30-80 km band, scaled),
2. co-clusters it with the eta-derived radius (Section IV-C),
3. answers it with Region-to-Region (Algorithm 2), and
4. verifies every answer against exact A*, reporting the error profile and
   the work saved versus answering each rider separately — plus the same
   batch through k-Path, whose error is unbounded.

Run:  python examples/long_distance_carpool.py
"""

from repro import WorkloadGenerator, beijing_like
from repro.queries.workload import Hotspot
from repro.analysis.metrics import error_report, exact_distances
from repro.baselines.kpath import KPathAnswerer
from repro.baselines.one_by_one import OneByOneAnswerer
from repro.core.coclustering import CoClusteringDecomposer
from repro.core.r2r import RegionToRegionAnswerer
from repro.queries.workload import band_for_network

ETA = 0.05  # the paper's error budget


def main() -> None:
    graph = beijing_like("medium", seed=9)
    # Carpool demand concentrates *hard*: an airport, a CBD and a few
    # park-and-ride lots, each only a couple of hundred metres across.
    # That is what makes the eta-derived co-clustering radius (a fraction
    # of a percent of the trip length, Section IV-C2) actually bite: many
    # riders share the same pickup/dropoff vertices or immediate
    # neighbours, forming the dumbbell clusters R2R feeds on.
    min_x, min_y, max_x, max_y = graph.extent()
    span = max(max_x - min_x, max_y - min_y)
    tight = span * 0.004  # ~0.5 km station footprint
    stations = [
        Hotspot(span * 0.42, 0.0, sigma=tight, weight=3.0),  # airport
        # The CBD sits in the dense city centre, where intersections are a
        # couple of hundred metres apart — close enough for the eta-radius
        # to group *different* pickup vertices into one region.
        Hotspot(span * 0.02, span * 0.01, sigma=span * 0.01, weight=3.0),
        Hotspot(-span * 0.05, -span * 0.38, sigma=tight, weight=1.5),
        Hotspot(span * 0.10, span * 0.36, sigma=tight, weight=1.5),
        Hotspot(-span * 0.36, -span * 0.20, sigma=tight, weight=1.0),
    ]
    workload = WorkloadGenerator(
        graph, hotspots=stations, hotspot_fraction=0.97, seed=31
    )
    low, high = band_for_network(graph, "r2r")
    batch = workload.batch(400, min_dist=low, max_dist=high)
    print(
        f"{len(batch)} carpool requests, trip length {low:.0f}-{high:.0f} km "
        f"on a {graph.num_vertices}-intersection network\n"
    )

    decomposition = CoClusteringDecomposer(graph, eta=ETA).decompose(batch)
    sizes = sorted(decomposition.cluster_sizes, reverse=True)
    print(
        f"Co-Clustering: {len(decomposition)} region pairs "
        f"(largest {sizes[0]} riders, "
        f"{sum(1 for s in sizes if s > 1)} shareable pairs) "
        f"in {decomposition.elapsed_seconds * 1000:.1f} ms"
    )

    r2r = RegionToRegionAnswerer(graph, eta=ETA, selection="longest").answer(
        decomposition
    )
    baseline = OneByOneAnswerer(graph).answer(batch)
    kpath = KPathAnswerer(graph).answer(decomposition)

    oracle = {q: r.distance for q, r in baseline.answers}
    r2r_err = error_report(graph, r2r, oracle)
    kp_err = error_report(graph, kpath, oracle)

    print(f"\n{'':>14} | {'time (s)':>8} | {'VNN':>8} | {'avg err %':>9} | {'max err %':>9}")
    print("-" * 60)
    print(f"{'A* (exact)':>14} | {baseline.answer_seconds:>8.4f} | {baseline.visited:>8} | {0.0:>9.3f} | {0.0:>9.3f}")
    print(f"{'R2R (eta=5%)':>14} | {r2r.answer_seconds:>8.4f} | {r2r.visited:>8} | "
          f"{r2r_err.average_error_pct:>9.3f} | {r2r_err.max_error_pct:>9.3f}")
    print(f"{'k-Path (k=1)':>14} | {kpath.answer_seconds:>8.4f} | {kpath.visited:>8} | "
          f"{kp_err.average_error_pct:>9.3f} | {kp_err.max_error_pct:>9.3f}")

    assert r2r_err.max_error_pct <= 100 * ETA + 1e-6, "eta guarantee violated!"
    print(
        f"\nR2R answered {r2r_err.approximate_count} requests approximately "
        f"(error certified <= {100 * ETA:.0f} %) and {r2r_err.exact_count} exactly."
    )
    print("k-Path is fast but its error is unbounded — exactly Table II's story.")


if __name__ == "__main__":
    main()
